module Machine = Exochi_cpu.Machine
module Surface = Exochi_memory.Surface
module Address_space = Exochi_memory.Address_space
module Phys_mem = Exochi_memory.Phys_mem
module Memmodel = Exochi_memory.Memmodel
module Platform = Exochi_core.Exo_platform
module Chi = Exochi_core.Chi_runtime
module Chi_descriptor = Exochi_core.Chi_descriptor
module Gpu = Exochi_accel.Gpu
module Trace = Exochi_obs.Trace
module Kernel = Exochi_kernels.Kernel
module Registry = Exochi_kernels.Registry
module Image = Exochi_media.Image
module Prng = Exochi_util.Prng
module Fault_plan = Exochi_faults.Fault_plan
module Checksum = Exochi_guard.Checksum
module Bound = Exochi_analysis.Bound

(* End-to-end integrity checking (Exo-guard). With a guard installed,
   injected GTT-corruption and CEH-spurious faults additionally flip one
   output byte each (the SDC model): the detection machinery — full
   output checksums against a golden reference plus sampled golden-replay
   audits — must then turn every one of them into a *detected* event and
   repair it, so the server never acknowledges a wrong result. *)
type guard = {
  g_audit_frac : float;  (** fraction of batch shreds golden-replayed *)
}

type config = {
  tenants : Tenant.config array;
  batch : Batcher.config;
  backlog_cap : int;
  max_requeue : int;
  scale : Kernel.scale;
  frames : int option;
  memmodel : Memmodel.config;
  guard : guard option;
  hedge_after_ps : int;  (** 0 = hedged re-dispatch off *)
  breaker_cooldown_ps : int;  (** 0 = legacy permanent quarantine *)
  static_admission : bool;
      (** shed deadline jobs whose Exo-bound WCET cannot fit the slack *)
  opt_level : Exochi_opt.Opt.level;
      (** Exo-opt level applied to arena programs at build time *)
  devices : int;  (** X3K devices in the platform's device set *)
  placement : Placement.policy;
      (** batch -> device policy (multi-device only) *)
}

let default_config =
  {
    tenants = [| Tenant.make_config "alpha"; Tenant.make_config "beta" |];
    batch = Batcher.default;
    backlog_cap = 96;
    max_requeue = 3;
    scale = Kernel.Small;
    frames = None;
    memmodel = Memmodel.Cc_shared;
    guard = None;
    hedge_after_ps = 0;
    breaker_cooldown_ps = 0;
    static_admission = false;
    opt_level = Exochi_opt.Opt.O0;
    devices = 1;
    placement = Placement.Least_loaded;
  }

(* A kernel's resident execution state: workload surfaces materialised in
   the shared address space, descriptors allocated, inputs produced and
   the X3K program assembled — once, at prepare time. Jobs then only pay
   for dispatch. *)
type arena = {
  a_units : int;
  a_unit_params : int -> int array;
  a_prog : Exochi_isa.X3k_ast.program;
  a_descriptors : Chi_descriptor.t list;
  (* Exo-bound per-shred worst-case busy cycles over the arena's actual
     parameter ranges; None when the analysis returns Unbounded/Unknown
     (such kernels are admitted — static admission never lies) *)
  a_bound_cycles : int option;
  (* golden reference: checksum + byte snapshot of the output surfaces
     after a prepare-time full golden replay (outputs are batch-size
     independent — no kernel reads %sid/%nshred). None when no guard. *)
  mutable a_ref_sum : int64 option;
  mutable a_golden : (int * bytes) list; (* (surface base, bytes) *)
}

type t = {
  cfg : config;
  platform : Platform.t;
  rt : Chi.t;
  tenants : Tenant.t array;
  arenas : (string, arena) Hashtbl.t; (* keyed by lowercase abbrev *)
  coll : Server_stats.collector;
  attempts : (int, int) Hashtbl.t; (* job id -> failed dispatches *)
  mutable batch_seq : int;
  mutable job_seq : int;
  (* Exo-guard state *)
  corrupt_prng : Prng.t option; (* SDC model byte flips *)
  audit_prng : Prng.t option; (* which shreds the audit samples *)
  mutable g_last_inj : int; (* gtt+ceh injections already corrupted *)
  mutable g_corrupted : int;
  mutable g_detected : int;
  mutable g_audit_shreds : int;
  journal : Serve_journal.writer option;
  (* recovery verification: the journaled completion sequence the redo
     must reproduce (job id + fault-stream positions, in order) *)
  expect : (int * int array) Queue.t option;
  (* device placement, present only on a multi-device platform — the
     single-device server keeps the historical one-batch dispatch path *)
  plc : Placement.t option;
}

let create ?(config = default_config) ?fault_plan ?trace ?journal ?expect ()
    =
  if Array.length config.tenants = 0 then invalid_arg "Server: no tenants";
  if config.backlog_cap < 0 then invalid_arg "Server: backlog_cap";
  (match config.guard with
  | Some g when g.g_audit_frac < 0.0 || g.g_audit_frac > 1.0 ->
    invalid_arg "Server: guard audit fraction must be in [0,1]"
  | _ -> ());
  if config.devices <= 0 then invalid_arg "Server: devices";
  let platform =
    Platform.create ~memmodel:config.memmodel ~devices:config.devices
      ?fault_plan ?trace ()
  in
  (* interleaved flushing is only safe for band-ordered kernels; a mixed
     arena population must use the conservative policy in non-CC mode *)
  let rt =
    let create = Chi.create ~platform ~hedge_after_ps:config.hedge_after_ps
        ~breaker_cooldown_ps:config.breaker_cooldown_ps
    in
    match config.memmodel with
    | Memmodel.Cc_shared -> create ()
    | _ -> create ~flush_policy:Chi.Upfront ()
  in
  let guard_prng salt =
    match (config.guard, fault_plan) with
    | Some _, Some plan ->
      Some (Prng.create (Int64.logxor (Fault_plan.seed plan) salt))
    | _ -> None
  in
  {
    cfg = config;
    platform;
    rt;
    tenants = Array.mapi (fun id c -> Tenant.create ~id c) config.tenants;
    arenas = Hashtbl.create 8;
    coll = Server_stats.collector ();
    attempts = Hashtbl.create 64;
    batch_seq = 0;
    job_seq = 0;
    corrupt_prng = guard_prng 0x5DC0FFEE0BADF00DL;
    audit_prng = guard_prng 0x0A0D17B175L;
    g_last_inj = 0;
    g_corrupted = 0;
    g_detected = 0;
    g_audit_shreds = 0;
    journal;
    expect =
      (match expect with
      | None -> None
      | Some l ->
        let q = Queue.create () in
        List.iter (fun e -> Queue.add e q) l;
        Some q);
    plc =
      (if config.devices > 1 then
         Some (Placement.create ~devices:config.devices ~policy:config.placement)
       else None);
  }

let config t = t.cfg
let platform t = t.platform
let runtime t = t.rt
let now_ps t = Machine.now_ps (Platform.cpu t.platform)

let queue_depth t =
  Array.fold_left (fun n ten -> n + Tenant.depth ten) 0 t.tenants

let tenant_depths t =
  Array.map (fun ten -> (Tenant.name ten, Tenant.depth ten)) t.tenants

let breakers_open t =
  let r = Chi.recovery t.rt in
  max 0 (r.Chi.breaker_opens - r.Chi.breaker_closes)

let devices t = Platform.devices t.platform

(* Per-device placement/health row: (dev, outstanding shreds,
   outstanding batches, open breakers, half-open breakers). Device 0
   with zero load on a single-device server. *)
let device_snapshot t =
  Array.init (devices t) (fun d ->
      let shreds, batches =
        match t.plc with Some p -> Placement.load p ~dev:d | None -> (0, 0)
      in
      let _, opened, half = Chi.breaker_census t.rt ~dev:d in
      (d, shreds, batches, opened, half))

let emit_ev ?(dev = 0) t kind =
  match Platform.trace t.platform with
  | None -> ()
  | Some sink -> Trace.emit sink ~ts_ps:(now_ps t) ~dev ~seq:Trace.Ia32 kind

(* ---- arenas ---- *)

(* Fixed arena seed: arena pixel data is server state, independent of any
   workload seed, so serving results depend only on the job schedule. *)
let arena_seed = 0x00A7E7A5EEDL

let materialise t (io : Kernel.io) =
  let aspace = Platform.aspace t.platform in
  let bpp_of name =
    match List.assoc_opt ("bpp:" ^ name) io.Kernel.meta with
    | Some b -> b
    | None -> 1
  in
  let mk_desc name width height mode =
    let bpp = bpp_of name in
    let pitch = Surface.required_pitch ~width ~bpp ~tiling:Surface.Linear in
    let bytes = pitch * height in
    let base = Address_space.alloc aspace ~name ~bytes ~align:64 in
    let rec touch off =
      if off < bytes then begin
        ignore (Address_space.fault_in aspace ~vaddr:(base + off));
        touch (off + Phys_mem.page_size)
      end
    in
    touch 0;
    Chi_descriptor.alloc t.platform ~name ~base ~width ~height ~bpp ~mode ()
  in
  let inputs =
    List.map
      (fun (name, img) ->
        let d =
          mk_desc name img.Image.width img.Image.height Chi_descriptor.Input
        in
        Image.store aspace img ~surface:d.Chi_descriptor.surface;
        d)
      io.Kernel.inputs
  in
  let outputs =
    List.map
      (fun (name, w, h) -> mk_desc name w h Chi_descriptor.Output)
      io.Kernel.outputs
  in
  (inputs, outputs)

let find_arena t abbrev =
  Hashtbl.find_opt t.arenas (String.lowercase_ascii abbrev)

(* ---- Exo-guard: golden reference + integrity verification ---- *)

let output_surfaces (a : arena) =
  List.filter_map
    (fun d ->
      let s = d.Chi_descriptor.surface in
      match s.Surface.mode with
      | Surface.Output | Surface.In_out -> Some s
      | Surface.Input -> None)
    a.a_descriptors

let arena_checksum t (a : arena) =
  let aspace = Platform.aspace t.platform in
  List.fold_left
    (fun acc (s : Surface.t) ->
      Checksum.add_bytes acc
        (Address_space.read_bytes aspace ~vaddr:s.Surface.base
           ~len:(Surface.byte_size s)))
    Checksum.offset_basis (output_surfaces a)

let bind_arena t (a : arena) =
  Gpu.bind
    (Platform.gpu t.platform)
    ~prog:a.a_prog
    ~surfaces:
      (Array.map
         (fun sname ->
           match
             List.find_opt
               (fun d -> d.Chi_descriptor.surface.Surface.name = sname)
               a.a_descriptors
           with
           | Some d -> d.Chi_descriptor.surface
           | None -> assert false (* assembler only names real surfaces *))
         a.a_prog.Exochi_isa.X3k_ast.surfaces)

(* Functionally replay every unit of the arena on the IA32 proxy and
   record the output checksum plus a byte snapshot. Sound because no
   kernel reads %sid/%nshred (outputs are pure functions of the per-unit
   params), and serve arenas have no In_out surfaces. Repair restores
   the snapshot rather than replaying: kernels may never write padding
   bytes, so a corrupted pad byte is only healable by copy. *)
let golden_pass t (a : arena) =
  let gpu = Platform.gpu t.platform in
  bind_arena t a;
  for u = 0 to a.a_units - 1 do
    ignore
      (Gpu.emulate_shred gpu
         { Gpu.shred_id = u; entry = 0; params = a.a_unit_params u })
  done;
  let aspace = Platform.aspace t.platform in
  a.a_golden <-
    List.map
      (fun (s : Surface.t) ->
        ( s.Surface.base,
          Address_space.read_bytes aspace ~vaddr:s.Surface.base
            ~len:(Surface.byte_size s) ))
      (output_surfaces a);
  a.a_ref_sum <- Some (arena_checksum t a)

(* Launch-parameter environment for Exo-bound: the inclusive per-index
   min/max over every unit's actual parameter vector. *)
let arena_bound_env ~units ~unit_params =
  if units <= 0 then Bound.no_env
  else begin
    let p0 = unit_params 0 in
    let nparams = Array.length p0 in
    let lo = Array.copy p0 and hi = Array.copy p0 in
    for u = 1 to units - 1 do
      let p = unit_params u in
      for i = 0 to min (Array.length p) nparams - 1 do
        if p.(i) < lo.(i) then lo.(i) <- p.(i);
        if p.(i) > hi.(i) then hi.(i) <- p.(i)
      done
    done;
    fun i -> if i >= 0 && i < nparams then Some (lo.(i), hi.(i)) else None
  end

let ensure_arena t abbrev =
  match find_arena t abbrev with
  | Some a -> Ok a
  | None -> (
    match Registry.find abbrev with
    | None -> Error (Job.Unknown_kernel abbrev)
    | Some k ->
      let prng = Prng.create arena_seed in
      let io = k.Kernel.make_io ?frames:t.cfg.frames prng t.cfg.scale in
      let inputs, outputs = materialise t io in
      (* arena inputs were produced by the tenant's preceding IA32 stage *)
      List.iter (fun d -> Chi.produce t.rt d) inputs;
      let prog =
        Exochi_opt.Opt.optimize t.cfg.opt_level
          (Exochi_isa.X3k_asm.assemble_exn ~name:k.Kernel.abbrev
             (k.Kernel.x3k_asm io))
      in
      (* the bound (and thus static admission) is computed on the
         program the arena will actually run *)
      let bound_cycles =
        if not t.cfg.static_admission then None
        else
          let env =
            arena_bound_env ~units:io.Kernel.units
              ~unit_params:(k.Kernel.unit_params io)
          in
          match (Bound.analyze_x3k ~env prog).Bound.verdict with
          | Bound.Cycles c -> Some c
          | Bound.Unbounded | Bound.Unknown _ -> None
      in
      let a =
        {
          a_units = io.Kernel.units;
          a_unit_params = k.Kernel.unit_params io;
          a_prog = prog;
          a_descriptors = inputs @ outputs;
          a_bound_cycles = bound_cycles;
          a_ref_sum = None;
          a_golden = [];
        }
      in
      if t.cfg.guard <> None then golden_pass t a;
      Hashtbl.replace t.arenas (String.lowercase_ascii abbrev) a;
      Ok a)

let prepare t kernels =
  List.iter (fun k -> ignore (ensure_arena t k)) kernels

(* ---- admission ---- *)

let make_job t ~tenant ~kernel ~shreds ?(priority = Job.Normal) ?deadline_ps ()
    =
  let id = t.job_seq in
  t.job_seq <- t.job_seq + 1;
  { Job.id; tenant; kernel; shreds; priority; submit_ps = now_ps t;
    deadline_ps }

let shed t (job : Job.t) reason =
  (match t.journal with
  | None -> ()
  | Some w ->
    Serve_journal.record w
      (Serve_journal.Shed { job = job.Job.id; reason = Job.reason_label reason }));
  Server_stats.record_shed t.coll job reason ~now_ps:(now_ps t);
  emit_ev t
    (Trace.Job_shed
       { job = job.Job.id; tenant = job.Job.tenant;
         reason = Job.reason_label reason })

(* Static admission (Exo-bound): the least wall-clock the job can take —
   dispatch cost plus the per-shred WCET over the waves its shreds need
   on the hardware contexts — against the slack its deadline leaves.
   Conservative in exactly one direction: only a *proven* bound sheds
   (no bound, or no deadline, admits), so every shed job was certain to
   miss. *)
let infeasible_deadline t (a : arena) (job : Job.t) ~now =
  match (job.Job.deadline_ps, a.a_bound_cycles) with
  | Some deadline, Some c when t.cfg.static_admission ->
    let gpu = Platform.gpu t.platform in
    let contexts = Gpu.hw_contexts gpu in
    let waves = (job.Job.shreds + contexts - 1) / contexts in
    let cycles = (Gpu.config gpu).Gpu.dispatch_cycles + (c * waves) in
    let needed_ps = cycles * Gpu.cycle_ps gpu in
    let slack_ps = deadline - now in
    if needed_ps > slack_ps then
      Some (Job.Infeasible_deadline { needed_ps; slack_ps })
    else None
  | _ -> None

let admission t (job : Job.t) =
  if job.Job.tenant < 0 || job.Job.tenant >= Array.length t.tenants then
    invalid_arg "Server.submit: tenant id out of range";
  if job.Job.shreds <= 0 then invalid_arg "Server.submit: shreds";
  match ensure_arena t job.Job.kernel with
  | Error r -> Error r
  | Ok a ->
    let now = now_ps t in
    if Job.expired job ~now_ps:now then
      Error
        (Job.Deadline_expired
           { late_ps = now - Option.get job.Job.deadline_ps })
    else begin
      match infeasible_deadline t a job ~now with
      | Some r -> Error r
      | None ->
      let ten = t.tenants.(job.Job.tenant) in
      let cap = (Tenant.config ten).Tenant.queue_cap in
      let depth = Tenant.depth ten in
      if depth >= cap then
        Error (Job.Queue_full { tenant = job.Job.tenant; depth; cap })
      else begin
        (* device-aware backlog: the server-wide budget scales with the
           device set — N devices drain N batches per cycle *)
        let cap = t.cfg.backlog_cap * devices t in
        let backlog = queue_depth t in
        if backlog >= cap then
          Error (Job.Inflight_exceeded { backlog; cap })
        else Ok ten
      end
    end

let submit t (job : Job.t) =
  Server_stats.record_submit t.coll job;
  match admission t job with
  | Error reason ->
    shed t job reason;
    Error reason
  | Ok ten ->
    Tenant.enqueue ten job;
    (match t.journal with
    | None -> ()
    | Some w ->
      Serve_journal.record w
        (Serve_journal.Admit { job = job.Job.id; at_ps = now_ps t }));
    Server_stats.record_admit t.coll job;
    emit_ev t (Trace.Job_arrive { job = job.Job.id; tenant = job.Job.tenant });
    Ok ()

(* ---- dispatch ---- *)

(* The SDC model plus its detection, run after every successful batch.
   Ground truth first: each GTT-corrupt / CEH-spurious injection since
   the previous batch flips one output byte — the silent-data-corruption
   footprint the legacy recovery path would have acknowledged as a
   correct result. Then detection: sampled golden-replay audits (each
   charged at ULI + CEH emulation cost) and a full output checksum
   against the golden reference. Any mismatch restores the golden byte
   snapshot, charged at the memory model's copy bandwidth. *)
let guard_verify t (arena : arena) ~batch ~shreds =
  match t.cfg.guard with
  | None -> ()
  | Some g ->
    let aspace = Platform.aspace t.platform in
    let cpu = Platform.cpu t.platform in
    let outs = Array.of_list (output_surfaces arena) in
    (* 1. corruption: one flipped byte per new injection *)
    let delta =
      match (Platform.fault_plan t.platform, t.corrupt_prng) with
      | Some _, Some cp ->
        (* SDC ground truth sums over the whole device set: any device's
           GTT/CEH injection can corrupt the shared output surfaces *)
        let inj =
          let tot = ref 0 in
          for d = 0 to devices t - 1 do
            match Platform.fault_plan_dev t.platform d with
            | Some plan ->
              tot :=
                !tot
                + Fault_plan.injected plan Fault_plan.Gtt_corrupt
                + Fault_plan.injected plan Fault_plan.Ceh_spurious
            | None -> ()
          done;
          !tot
        in
        let delta = inj - t.g_last_inj in
        t.g_last_inj <- inj;
        if delta > 0 && Array.length outs > 0 then begin
          for _ = 1 to delta do
            let s = outs.(Prng.int cp (Array.length outs)) in
            let vaddr = s.Surface.base + Prng.int cp (Surface.byte_size s) in
            let b = Address_space.read_bytes aspace ~vaddr ~len:1 in
            Bytes.set b 0
              (Char.chr
                 (Char.code (Bytes.get b 0) lxor (1 + Prng.int cp 255)));
            Address_space.write_bytes aspace ~vaddr b
          done;
          t.g_corrupted <- t.g_corrupted + delta;
          delta
        end
        else 0
      | _ -> 0
    in
    (* 2. sampled golden-replay audits; replaying a unit rewrites its
       outputs with golden values, so a checksum change across the audit
       means the audit itself caught (and partially healed) corruption *)
    let audit_hit =
      match t.audit_prng with
      | Some ap when g.g_audit_frac > 0.0 ->
        let naudit =
          int_of_float (Float.ceil (g.g_audit_frac *. float_of_int shreds))
        in
        let sum0 = arena_checksum t arena in
        let gpu = Platform.gpu t.platform in
        let costs = Platform.costs t.platform in
        bind_arena t arena;
        for _ = 1 to naudit do
          let u = Prng.int ap arena.a_units in
          let _, lane_ops =
            Gpu.emulate_shred gpu
              { Gpu.shred_id = u; entry = 0; params = arena.a_unit_params u }
          in
          Machine.add_time_ps cpu
            (costs.Platform.uli_ps + costs.Platform.ceh_base_ps
            + (lane_ops * costs.Platform.ceh_per_lane_ps))
        done;
        t.g_audit_shreds <- t.g_audit_shreds + naudit;
        arena_checksum t arena <> sum0
      | _ -> false
    in
    (* 3. full checksum against the golden reference; heal on mismatch *)
    let mismatch =
      match arena.a_ref_sum with
      | Some ref_sum -> arena_checksum t arena <> ref_sum
      | None -> false
    in
    (* page-granular heal: corruption is a handful of bytes, so diff the
       snapshot page by page and copy back only damaged pages — the data
       movement is what the memory model charges, the compare rides the
       checksum pass (charged zero, like all guard hashing) *)
    if mismatch then begin
      let page = Exochi_memory.Phys_mem.page_size in
      let restored = ref 0 in
      List.iter
        (fun (base, img) ->
          let len = Bytes.length img in
          let cur = Address_space.read_bytes aspace ~vaddr:base ~len in
          let off = ref 0 in
          while !off < len do
            let n = min page (len - !off) in
            if Bytes.sub cur !off n <> Bytes.sub img !off n then begin
              Address_space.write_bytes aspace ~vaddr:(base + !off)
                (Bytes.sub img !off n);
              restored := !restored + n
            end;
            off := !off + page
          done)
        arena.a_golden;
      Machine.add_time_ps cpu
        (Memmodel.copy_ps (Platform.model_costs t.platform) ~bytes:!restored)
    end;
    if delta > 0 && (mismatch || audit_hit) then begin
      t.g_detected <- t.g_detected + delta;
      emit_ev t
        (Trace.Sdc_detected
           {
             batch;
             corruptions = delta;
             source = (if audit_hit then "audit" else "checksum");
           })
    end

let journal_rec t r =
  match t.journal with None -> () | Some w -> Serve_journal.record w r

(* Per-class fault-stream positions, concatenated device by device (the
   single-device layout is unchanged: device 0's classes only). *)
let drawn_counts t =
  let nclasses = List.length Fault_plan.all_classes in
  Array.concat
    (List.init (devices t) (fun d ->
         match Platform.fault_plan_dev t.platform d with
         | Some plan -> Fault_plan.drawn_counts plan
         | None -> Array.make nclasses 0))

(* Recovery verification: each redo completion must retrace the
   journaled prefix — same job, same fault-stream positions. An empty
   queue means we are past the prefix (into the stranded un-acked work
   and beyond); a mismatch means the redo diverged and the journal's
   guarantees are void, which is fatal by design. *)
let verify_expected t (j : Job.t) drawn =
  match t.expect with
  | None -> ()
  | Some q -> (
    match Queue.take_opt q with
    | None -> ()
    | Some (ej, edrawn) ->
      if ej <> j.Job.id || edrawn <> drawn then
        failwith
          (Printf.sprintf
             "Server: recovery divergence — redo completed job %d where \
              the journal recorded job %d (or fault-stream positions \
              differ); the replay is not retracing the original run"
             j.Job.id ej))

let unverified t =
  match t.expect with None -> 0 | Some q -> Queue.length q

let shed_expired t ~on_shed jobs =
  let now = now_ps t in
  List.iter
    (fun (j : Job.t) ->
      let late_ps =
        match j.Job.deadline_ps with Some d -> now - d | None -> 0
      in
      shed t j (Job.Deadline_expired { late_ps });
      on_shed j)
    jobs

(* Bounded dispatch-failure requeue: each job goes back to the front of
   its tenant's class, until [max_requeue] failures shed it as fatal —
   a degraded platform degrades throughput, not correctness. *)
let requeue_jobs t ~on_shed jobs =
  List.iter
    (fun (j : Job.t) ->
      let a =
        1 + Option.value (Hashtbl.find_opt t.attempts j.Job.id) ~default:0
      in
      Hashtbl.replace t.attempts j.Job.id a;
      if a > t.cfg.max_requeue then begin
        Hashtbl.remove t.attempts j.Job.id;
        shed t j (Job.Fatal_fault { attempts = a });
        on_shed j
      end
      else begin
        Tenant.requeue t.tenants.(j.Job.tenant) j;
        Server_stats.record_requeue t.coll j
      end)
    jobs

let dispatch_batch t ~on_done ~on_shed (b : Batcher.batch) =
  let arena =
    match find_arena t b.Batcher.kernel with
    | Some a -> a
    | None -> assert false (* admission materialised it *)
  in
  let njobs = List.length b.Batcher.jobs in
  let id = t.batch_seq in
  t.batch_seq <- t.batch_seq + 1;
  emit_ev t
    (Trace.Batch_dispatch { batch = id; jobs = njobs; shreds = b.Batcher.shreds });
  Server_stats.record_batch t.coll ~jobs:njobs ~shreds:b.Batcher.shreds;
  let params i = arena.a_unit_params (i mod arena.a_units) in
  match
    Chi.parallel t.rt ~prog:arena.a_prog ~descriptors:arena.a_descriptors
      ~num_threads:b.Batcher.shreds ~params ~master_nowait:false ()
  with
  | (_ : Chi.team) ->
    guard_verify t arena ~batch:id ~shreds:b.Batcher.shreds;
    let done_ps = now_ps t in
    let drawn = drawn_counts t in
    List.iter
      (fun (j : Job.t) ->
        Hashtbl.remove t.attempts j.Job.id;
        Server_stats.record_completion t.coll j ~done_ps;
        verify_expected t j drawn;
        journal_rec t (Serve_journal.Done { job = j.Job.id; done_ps; drawn });
        emit_ev t
          (Trace.Job_done
             { job = j.Job.id; tenant = j.Job.tenant;
               latency_ps = done_ps - j.Job.submit_ps });
        on_done j)
      b.Batcher.jobs
  | exception Gpu.Stuck _ ->
    (* the self-healing dispatcher gave up on this team: clear the work
       queue and keep the jobs *)
    ignore (Gpu.drain_queue (Platform.gpu t.platform));
    requeue_jobs t ~on_shed b.Batcher.jobs

(* ---- multi-device dispatch (placement layer) ---- *)

(* Launch one batch, pinned to the device the placement layer picks
   (biased away from devices with open breakers), without waiting —
   concurrently launched batches overlap on different devices. *)
let launch_batch t plc (b : Batcher.batch) =
  let arena =
    match find_arena t b.Batcher.kernel with
    | Some a -> a
    | None -> assert false (* admission materialised it *)
  in
  let njobs = List.length b.Batcher.jobs in
  let id = t.batch_seq in
  t.batch_seq <- t.batch_seq + 1;
  let penalty d =
    let _, opened, half = Chi.breaker_census t.rt ~dev:d in
    (32 * opened) + (8 * half)
  in
  let dev =
    Placement.place plc ~penalty ~kernel:b.Batcher.kernel
      ~shreds:b.Batcher.shreds
  in
  emit_ev ~dev t
    (Trace.Batch_dispatch
       { batch = id; jobs = njobs; shreds = b.Batcher.shreds });
  Server_stats.record_batch t.coll ~jobs:njobs ~shreds:b.Batcher.shreds;
  let params i = arena.a_unit_params (i mod arena.a_units) in
  let team =
    Chi.parallel t.rt ~prog:arena.a_prog ~descriptors:arena.a_descriptors
      ~num_threads:b.Batcher.shreds ~params ~device:dev ~master_nowait:true ()
  in
  (id, b, arena, dev, team)

(* Finish a launched batch: barrier (which supervises recovery across
   the whole device set), guard verification, completion records. *)
let finish_batch t plc ~on_done ~on_shed (id, b, arena, dev, team) =
  match Chi.wait t.rt team with
  | () ->
    Placement.release plc ~dev ~shreds:b.Batcher.shreds;
    guard_verify t arena ~batch:id ~shreds:b.Batcher.shreds;
    let done_ps = now_ps t in
    let drawn = drawn_counts t in
    List.iter
      (fun (j : Job.t) ->
        Hashtbl.remove t.attempts j.Job.id;
        Server_stats.record_completion t.coll j ~done_ps;
        verify_expected t j drawn;
        journal_rec t (Serve_journal.Done { job = j.Job.id; done_ps; drawn });
        emit_ev ~dev t
          (Trace.Job_done
             { job = j.Job.id; tenant = j.Job.tenant;
               latency_ps = done_ps - j.Job.submit_ps });
        on_done j)
      b.Batcher.jobs
  | exception Gpu.Stuck _ ->
    Placement.release plc ~dev ~shreds:b.Batcher.shreds;
    ignore (Gpu.drain_queue (Platform.gpu_dev t.platform dev));
    requeue_jobs t ~on_shed b.Batcher.jobs

let nop (_ : Job.t) = ()

let dispatch_cycle t ?(on_done = nop) ?(on_shed = nop) () =
  Server_stats.sample_depth t.coll (queue_depth t);
  match t.plc with
  | None ->
    (* single device: the historical one-batch synchronous cycle *)
    let expired, batch =
      Batcher.select t.cfg.batch t.tenants ~now_ps:(now_ps t)
    in
    shed_expired t ~on_shed expired;
    (match batch with
    | None -> expired <> []
    | Some b ->
      dispatch_batch t ~on_done ~on_shed b;
      true)
  | Some plc ->
    (* select and launch up to one batch per device, then finish them
       in launch order — the first wait drains every device, so the
       teams genuinely overlap in simulated time *)
    let launched = ref [] in
    let nlaunched = ref 0 in
    let had_expired = ref false in
    let continue_ = ref true in
    while !continue_ && !nlaunched < devices t do
      let expired, batch =
        Batcher.select t.cfg.batch t.tenants ~now_ps:(now_ps t)
      in
      if expired <> [] then had_expired := true;
      shed_expired t ~on_shed expired;
      match batch with
      | None -> continue_ := false
      | Some b ->
        launched := launch_batch t plc b :: !launched;
        incr nlaunched
    done;
    List.iter (finish_batch t plc ~on_done ~on_shed) (List.rev !launched);
    !nlaunched > 0 || !had_expired

let drain t =
  while queue_depth t > 0 do
    ignore (dispatch_cycle t ())
  done

(* ---- statistics ---- *)

let stats t =
  let r = Chi.recovery t.rt in
  let recovery =
    {
      Server_stats.r_faults_injected =
        (match Platform.fault_plan t.platform with
        | Some plan -> Fault_plan.injected_total plan
        | None -> 0);
      r_redispatches = r.Chi.redispatches;
      r_doorbell_redeliveries = r.Chi.doorbell_redeliveries;
      r_watchdog_kills = r.Chi.watchdog_kills;
      r_quarantined_seqs = r.Chi.quarantined_seqs;
      r_fallback_shreds = r.Chi.fallback_shreds;
      r_atr_retries = Platform.atr_transient_retries t.platform;
      r_fatal = r.Chi.fatal;
      r_sdc_corrupted = t.g_corrupted;
      r_sdc_detected = t.g_detected;
      r_audit_shreds = t.g_audit_shreds;
      r_hedges = r.Chi.hedges;
      r_hedge_wins = r.Chi.hedge_wins;
      r_breaker_opens = r.Chi.breaker_opens;
      r_breaker_closes = r.Chi.breaker_closes;
    }
  in
  Server_stats.finalise t.coll
    ~tenant_names:(Array.map Tenant.name t.tenants)
    ~recovery

(* ---- serving a generated workload ---- *)

let run ?(on_job_done = nop) ?(on_cycle = fun () -> ()) t wl =
  prepare t (Workload.kernels wl);
  Workload.start wl ~now_ps:(now_ps t);
  let on_done j =
    Workload.on_complete wl j ~now_ps:(now_ps t);
    on_job_done j
  in
  let on_shed j = Workload.on_shed wl j ~now_ps:(now_ps t) in
  let rec admit_due () =
    match Workload.peek_time wl with
    | Some at when at <= now_ps t -> (
      match Workload.pop wl with
      | None -> ()
      | Some j ->
        (match submit t j with Ok () -> () | Error _ -> on_shed j);
        admit_due ())
    | _ -> ()
  in
  let running = ref true in
  while !running do
    admit_due ();
    if queue_depth t > 0 then
      ignore (dispatch_cycle t ~on_done ~on_shed ())
    else begin
      match Workload.peek_time wl with
      | Some at ->
        (* idle: jump the master's clock to the next arrival *)
        let now = now_ps t in
        if at > now then
          Machine.add_time_ps (Platform.cpu t.platform) (at - now)
      | None -> running := false
    end;
    on_cycle ()
  done;
  stats t
