module Machine = Exochi_cpu.Machine
module Surface = Exochi_memory.Surface
module Address_space = Exochi_memory.Address_space
module Phys_mem = Exochi_memory.Phys_mem
module Memmodel = Exochi_memory.Memmodel
module Platform = Exochi_core.Exo_platform
module Chi = Exochi_core.Chi_runtime
module Chi_descriptor = Exochi_core.Chi_descriptor
module Gpu = Exochi_accel.Gpu
module Trace = Exochi_obs.Trace
module Kernel = Exochi_kernels.Kernel
module Registry = Exochi_kernels.Registry
module Image = Exochi_media.Image
module Prng = Exochi_util.Prng
module Fault_plan = Exochi_faults.Fault_plan

type config = {
  tenants : Tenant.config array;
  batch : Batcher.config;
  backlog_cap : int;
  max_requeue : int;
  scale : Kernel.scale;
  frames : int option;
  memmodel : Memmodel.config;
}

let default_config =
  {
    tenants = [| Tenant.make_config "alpha"; Tenant.make_config "beta" |];
    batch = Batcher.default;
    backlog_cap = 96;
    max_requeue = 3;
    scale = Kernel.Small;
    frames = None;
    memmodel = Memmodel.Cc_shared;
  }

(* A kernel's resident execution state: workload surfaces materialised in
   the shared address space, descriptors allocated, inputs produced and
   the X3K program assembled — once, at prepare time. Jobs then only pay
   for dispatch. *)
type arena = {
  a_units : int;
  a_unit_params : int -> int array;
  a_prog : Exochi_isa.X3k_ast.program;
  a_descriptors : Chi_descriptor.t list;
}

type t = {
  cfg : config;
  platform : Platform.t;
  rt : Chi.t;
  tenants : Tenant.t array;
  arenas : (string, arena) Hashtbl.t; (* keyed by lowercase abbrev *)
  coll : Server_stats.collector;
  attempts : (int, int) Hashtbl.t; (* job id -> failed dispatches *)
  mutable batch_seq : int;
  mutable job_seq : int;
}

let create ?(config = default_config) ?fault_plan ?trace () =
  if Array.length config.tenants = 0 then invalid_arg "Server: no tenants";
  if config.backlog_cap < 0 then invalid_arg "Server: backlog_cap";
  let platform =
    Platform.create ~memmodel:config.memmodel ?fault_plan ?trace ()
  in
  (* interleaved flushing is only safe for band-ordered kernels; a mixed
     arena population must use the conservative policy in non-CC mode *)
  let rt =
    match config.memmodel with
    | Memmodel.Cc_shared -> Chi.create ~platform ()
    | _ -> Chi.create ~platform ~flush_policy:Chi.Upfront ()
  in
  {
    cfg = config;
    platform;
    rt;
    tenants = Array.mapi (fun id c -> Tenant.create ~id c) config.tenants;
    arenas = Hashtbl.create 8;
    coll = Server_stats.collector ();
    attempts = Hashtbl.create 64;
    batch_seq = 0;
    job_seq = 0;
  }

let config t = t.cfg
let platform t = t.platform
let runtime t = t.rt
let now_ps t = Machine.now_ps (Platform.cpu t.platform)

let queue_depth t =
  Array.fold_left (fun n ten -> n + Tenant.depth ten) 0 t.tenants

let emit_ev t kind =
  match Platform.trace t.platform with
  | None -> ()
  | Some sink -> Trace.emit sink ~ts_ps:(now_ps t) ~seq:Trace.Ia32 kind

(* ---- arenas ---- *)

(* Fixed arena seed: arena pixel data is server state, independent of any
   workload seed, so serving results depend only on the job schedule. *)
let arena_seed = 0x00A7E7A5EEDL

let materialise t (io : Kernel.io) =
  let aspace = Platform.aspace t.platform in
  let bpp_of name =
    match List.assoc_opt ("bpp:" ^ name) io.Kernel.meta with
    | Some b -> b
    | None -> 1
  in
  let mk_desc name width height mode =
    let bpp = bpp_of name in
    let pitch = Surface.required_pitch ~width ~bpp ~tiling:Surface.Linear in
    let bytes = pitch * height in
    let base = Address_space.alloc aspace ~name ~bytes ~align:64 in
    let rec touch off =
      if off < bytes then begin
        ignore (Address_space.fault_in aspace ~vaddr:(base + off));
        touch (off + Phys_mem.page_size)
      end
    in
    touch 0;
    Chi_descriptor.alloc t.platform ~name ~base ~width ~height ~bpp ~mode ()
  in
  let inputs =
    List.map
      (fun (name, img) ->
        let d =
          mk_desc name img.Image.width img.Image.height Chi_descriptor.Input
        in
        Image.store aspace img ~surface:d.Chi_descriptor.surface;
        d)
      io.Kernel.inputs
  in
  let outputs =
    List.map
      (fun (name, w, h) -> mk_desc name w h Chi_descriptor.Output)
      io.Kernel.outputs
  in
  (inputs, outputs)

let find_arena t abbrev =
  Hashtbl.find_opt t.arenas (String.lowercase_ascii abbrev)

let ensure_arena t abbrev =
  match find_arena t abbrev with
  | Some a -> Ok a
  | None -> (
    match Registry.find abbrev with
    | None -> Error (Job.Unknown_kernel abbrev)
    | Some k ->
      let prng = Prng.create arena_seed in
      let io = k.Kernel.make_io ?frames:t.cfg.frames prng t.cfg.scale in
      let inputs, outputs = materialise t io in
      (* arena inputs were produced by the tenant's preceding IA32 stage *)
      List.iter (fun d -> Chi.produce t.rt d) inputs;
      let prog =
        Exochi_isa.X3k_asm.assemble_exn ~name:k.Kernel.abbrev
          (k.Kernel.x3k_asm io)
      in
      let a =
        {
          a_units = io.Kernel.units;
          a_unit_params = k.Kernel.unit_params io;
          a_prog = prog;
          a_descriptors = inputs @ outputs;
        }
      in
      Hashtbl.replace t.arenas (String.lowercase_ascii abbrev) a;
      Ok a)

let prepare t kernels =
  List.iter (fun k -> ignore (ensure_arena t k)) kernels

(* ---- admission ---- *)

let make_job t ~tenant ~kernel ~shreds ?(priority = Job.Normal) ?deadline_ps ()
    =
  let id = t.job_seq in
  t.job_seq <- t.job_seq + 1;
  { Job.id; tenant; kernel; shreds; priority; submit_ps = now_ps t;
    deadline_ps }

let shed t (job : Job.t) reason =
  Server_stats.record_shed t.coll job reason ~now_ps:(now_ps t);
  emit_ev t
    (Trace.Job_shed
       { job = job.Job.id; tenant = job.Job.tenant;
         reason = Job.reason_label reason })

let admission t (job : Job.t) =
  if job.Job.tenant < 0 || job.Job.tenant >= Array.length t.tenants then
    invalid_arg "Server.submit: tenant id out of range";
  if job.Job.shreds <= 0 then invalid_arg "Server.submit: shreds";
  match ensure_arena t job.Job.kernel with
  | Error r -> Error r
  | Ok _ ->
    let now = now_ps t in
    if Job.expired job ~now_ps:now then
      Error
        (Job.Deadline_expired
           { late_ps = now - Option.get job.Job.deadline_ps })
    else begin
      let ten = t.tenants.(job.Job.tenant) in
      let cap = (Tenant.config ten).Tenant.queue_cap in
      let depth = Tenant.depth ten in
      if depth >= cap then
        Error (Job.Queue_full { tenant = job.Job.tenant; depth; cap })
      else begin
        let backlog = queue_depth t in
        if backlog >= t.cfg.backlog_cap then
          Error (Job.Inflight_exceeded { backlog; cap = t.cfg.backlog_cap })
        else Ok ten
      end
    end

let submit t (job : Job.t) =
  Server_stats.record_submit t.coll job;
  match admission t job with
  | Error reason ->
    shed t job reason;
    Error reason
  | Ok ten ->
    Tenant.enqueue ten job;
    Server_stats.record_admit t.coll job;
    emit_ev t (Trace.Job_arrive { job = job.Job.id; tenant = job.Job.tenant });
    Ok ()

(* ---- dispatch ---- *)

let shed_expired t ~on_shed jobs =
  let now = now_ps t in
  List.iter
    (fun (j : Job.t) ->
      let late_ps =
        match j.Job.deadline_ps with Some d -> now - d | None -> 0
      in
      shed t j (Job.Deadline_expired { late_ps });
      on_shed j)
    jobs

let dispatch_batch t ~on_done ~on_shed (b : Batcher.batch) =
  let arena =
    match find_arena t b.Batcher.kernel with
    | Some a -> a
    | None -> assert false (* admission materialised it *)
  in
  let njobs = List.length b.Batcher.jobs in
  let id = t.batch_seq in
  t.batch_seq <- t.batch_seq + 1;
  emit_ev t
    (Trace.Batch_dispatch { batch = id; jobs = njobs; shreds = b.Batcher.shreds });
  Server_stats.record_batch t.coll ~jobs:njobs ~shreds:b.Batcher.shreds;
  let params i = arena.a_unit_params (i mod arena.a_units) in
  match
    Chi.parallel t.rt ~prog:arena.a_prog ~descriptors:arena.a_descriptors
      ~num_threads:b.Batcher.shreds ~params ~master_nowait:false ()
  with
  | (_ : Chi.team) ->
    let done_ps = now_ps t in
    List.iter
      (fun (j : Job.t) ->
        Hashtbl.remove t.attempts j.Job.id;
        Server_stats.record_completion t.coll j ~done_ps;
        emit_ev t
          (Trace.Job_done
             { job = j.Job.id; tenant = j.Job.tenant;
               latency_ps = done_ps - j.Job.submit_ps });
        on_done j)
      b.Batcher.jobs
  | exception Gpu.Stuck _ ->
    (* the self-healing dispatcher gave up on this team: clear the work
       queue and keep the jobs — re-queue each at the front of its class
       (bounded), so a degraded platform degrades throughput, not
       correctness *)
    ignore (Gpu.drain_queue (Platform.gpu t.platform));
    List.iter
      (fun (j : Job.t) ->
        let a =
          1 + Option.value (Hashtbl.find_opt t.attempts j.Job.id) ~default:0
        in
        Hashtbl.replace t.attempts j.Job.id a;
        if a > t.cfg.max_requeue then begin
          Hashtbl.remove t.attempts j.Job.id;
          shed t j (Job.Fatal_fault { attempts = a });
          on_shed j
        end
        else begin
          Tenant.requeue t.tenants.(j.Job.tenant) j;
          Server_stats.record_requeue t.coll j
        end)
      b.Batcher.jobs

let nop (_ : Job.t) = ()

let dispatch_cycle t ?(on_done = nop) ?(on_shed = nop) () =
  Server_stats.sample_depth t.coll (queue_depth t);
  let expired, batch =
    Batcher.select t.cfg.batch t.tenants ~now_ps:(now_ps t)
  in
  shed_expired t ~on_shed expired;
  match batch with
  | None -> expired <> []
  | Some b ->
    dispatch_batch t ~on_done ~on_shed b;
    true

let drain t =
  while queue_depth t > 0 do
    ignore (dispatch_cycle t ())
  done

(* ---- statistics ---- *)

let stats t =
  let r = Chi.recovery t.rt in
  let recovery =
    {
      Server_stats.r_faults_injected =
        (match Platform.fault_plan t.platform with
        | Some plan -> Fault_plan.injected_total plan
        | None -> 0);
      r_redispatches = r.Chi.redispatches;
      r_doorbell_redeliveries = r.Chi.doorbell_redeliveries;
      r_watchdog_kills = r.Chi.watchdog_kills;
      r_quarantined_seqs = r.Chi.quarantined_seqs;
      r_fallback_shreds = r.Chi.fallback_shreds;
      r_atr_retries = Platform.atr_transient_retries t.platform;
      r_fatal = r.Chi.fatal;
    }
  in
  Server_stats.finalise t.coll
    ~tenant_names:(Array.map Tenant.name t.tenants)
    ~recovery

(* ---- serving a generated workload ---- *)

let run t wl =
  prepare t (Workload.kernels wl);
  Workload.start wl ~now_ps:(now_ps t);
  let on_done j = Workload.on_complete wl j ~now_ps:(now_ps t) in
  let on_shed j = Workload.on_shed wl j ~now_ps:(now_ps t) in
  let rec admit_due () =
    match Workload.peek_time wl with
    | Some at when at <= now_ps t -> (
      match Workload.pop wl with
      | None -> ()
      | Some j ->
        (match submit t j with Ok () -> () | Error _ -> on_shed j);
        admit_due ())
    | _ -> ()
  in
  let running = ref true in
  while !running do
    admit_due ();
    if queue_depth t > 0 then
      ignore (dispatch_cycle t ~on_done ~on_shed ())
    else begin
      match Workload.peek_time wl with
      | Some at ->
        (* idle: jump the master's clock to the next arrival *)
        let now = now_ps t in
        if at > now then
          Machine.add_time_ps (Platform.cpu t.platform) (at - now)
      | None -> running := false
    end
  done;
  stats t
