(** Exo-serve: a multi-tenant kernel-job server over one shared EXO
    platform.

    The server owns one {!Exochi_core.Exo_platform} (32 exo-sequencer
    contexts behind the MISP exoskeleton) and one
    {!Exochi_core.Chi_runtime}, and schedules kernel-invocation jobs
    ({!Job.t}) from multiple tenants onto it:

    - {b Admission control}: a job is admitted only if its kernel is
      registered, its deadline has not already passed, its tenant's
      bounded queue has room and the server-wide backlog budget is not
      exhausted — otherwise it is shed with a typed {!Job.shed_reason}.
    - {b Weighted fair sharing}: tenants carry fair-share weights;
      dispatch order follows per-tenant virtual time ({!Tenant.vtime})
      within strict priority classes.
    - {b Batching}: each dispatch cycle coalesces compatible queued jobs
      (same kernel) into {e one} CHI [parallel] team ({!Batcher}),
      amortising the doorbell/prewalk/barrier cost and keeping all EU
      hardware threads fed.
    - {b Kernel arenas}: every kernel runs against a resident arena —
      surfaces materialised, descriptors allocated and the X3K program
      assembled once at {!prepare} time — so steady-state dispatch pays
      no setup.
    - {b Graceful degradation}: under an installed fault plan, a team
      that the self-healing dispatcher cannot save ({!Exochi_accel.Gpu.Stuck})
      has its jobs re-queued (bounded by [max_requeue], then shed as
      [Fatal_fault]) instead of lost; quarantined slots and IA32
      fallbacks appear in {!Server_stats.recovery}.

    Everything runs on the simulated clock, so a fixed workload seed
    yields bit-identical statistics. *)

(** Exo-guard integrity checking (off when [config.guard] is [None]).
    With a guard installed, injected GTT-corrupt / CEH-spurious faults
    additionally flip one output byte each (the silent-data-corruption
    model), and after every batch the server verifies the output
    surfaces: a fraction [g_audit_frac] of the batch's shreds are
    golden-replayed on the IA32 proxy (audit, charged at CEH emulation
    cost) and a full FNV-1a checksum is compared against the arena's
    golden reference; mismatches are healed from a byte snapshot
    (charged at copy bandwidth) and counted as detected SDC. *)
type guard = { g_audit_frac : float }

type config = {
  tenants : Tenant.config array;
  batch : Batcher.config;
  backlog_cap : int;  (** server-wide bound on queued jobs *)
  max_requeue : int;  (** dispatch-failure retries before [Fatal_fault] *)
  scale : Exochi_kernels.Kernel.scale;  (** arena workload size *)
  frames : int option;  (** video-kernel frame override for arenas *)
  memmodel : Exochi_memory.Memmodel.config;
  guard : guard option;  (** integrity checking, [None] = off *)
  hedge_after_ps : int;  (** straggler hedging age, 0 = off *)
  breaker_cooldown_ps : int;  (** breaker cooldown, 0 = legacy quarantine *)
  static_admission : bool;
      (** Exo-bound static admission: at arena build time each kernel's
          X3K program is run through {!Exochi_analysis.Bound} under the
          arena's actual launch-parameter ranges; a deadline job whose
          proven worst-case runtime (dispatch + WCET x shred waves)
          already exceeds its remaining slack is shed at admission as
          [Infeasible_deadline] instead of burning accelerator time it
          is certain to waste. Kernels without a proven bound are always
          admitted. *)
  opt_level : Exochi_opt.Opt.level;
      (** Exo-opt optimization level applied to every arena's X3K
          program at build time; bounds and admission use the optimized
          code. Default [O0]. *)
  devices : int;
      (** X3K devices in the platform's device set (default 1). With
          [devices > 1] each dispatch cycle launches up to one batch per
          device — pinned by the {!Placement} layer and overlapped in
          simulated time — and the server-wide backlog budget scales
          with the set. [devices = 1] keeps the historical single-batch
          synchronous dispatch, bit-identical to the pre-device-set
          server. *)
  placement : Placement.policy;
      (** batch -> device policy (multi-device only); default
          [Least_loaded] *)
}

(** Two equal-weight tenants ("alpha", "beta"), default batching
    (32 jobs / 256 shreds), backlog 96, 3 requeues, [Small] arenas,
    CC-shared memory; guard off, hedging off, breakers off, static
    admission off. *)
val default_config : config

type t

(** [journal], when given, receives an [Admit] record per admission, a
    [Done] record (with the fault-plan stream positions) per completion
    and a [Shed] record per shed — each flushed immediately, so a
    SIGKILL leaves a loadable prefix. [expect], when given, is a
    journaled completion sequence a recovering run must retrace: each
    completion is checked against it in order and a divergence raises
    [Failure]. *)
val create :
  ?config:config ->
  ?fault_plan:Exochi_faults.Fault_plan.t ->
  ?trace:Exochi_obs.Trace.sink ->
  ?journal:Serve_journal.writer ->
  ?expect:(int * int array) list ->
  unit ->
  t

val config : t -> config
val platform : t -> Exochi_core.Exo_platform.t
val runtime : t -> Exochi_core.Chi_runtime.t

(** Simulated CPU clock. *)
val now_ps : t -> int

(** Jobs queued across all tenants. *)
val queue_depth : t -> int

(** Per-tenant (name, queued jobs), in tenant-id order — the live
    dashboard's backlog column. *)
val tenant_depths : t -> (string * int) array

(** Circuit breakers currently open (trips minus reinstatements). *)
val breakers_open : t -> int

(** X3K devices in the platform's device set. *)
val devices : t -> int

(** Per-device placement/health rows: [(dev, outstanding shreds,
    outstanding batches, open breakers, half-open breakers)] in device
    order — the dashboard / debugger device table. *)
val device_snapshot : t -> (int * int * int * int * int) array

(** Materialise arenas for these kernel abbreviations up front (surface
    allocation, input production, program assembly). Unknown names are
    ignored — they will shed as [Unknown_kernel] at submission. Idempotent. *)
val prepare : t -> string list -> unit

(** Fresh job stamped with the next id and the current simulated time. *)
val make_job :
  t ->
  tenant:int ->
  kernel:string ->
  shreds:int ->
  ?priority:Job.priority ->
  ?deadline_ps:int ->
  unit ->
  Job.t

(** Admission: enqueue the job or shed it with a typed reason. Records
    stats and emits [Job_arrive] / [Job_shed] trace events. *)
val submit : t -> Job.t -> (unit, Job.shed_reason) result

(** One dispatch cycle: drop expired queued jobs (shed as
    [Deadline_expired]), form one batch, run it as one team to the
    barrier. [on_done]/[on_shed] fire per job (closed-loop generators
    hook these). Returns [false] when there was nothing to do. *)
val dispatch_cycle :
  t -> ?on_done:(Job.t -> unit) -> ?on_shed:(Job.t -> unit) -> unit -> bool

(** Dispatch cycles until every queue is empty. *)
val drain : t -> unit

(** Serve a whole generated workload: admit arrivals as the simulated
    clock reaches them, dispatch between arrivals, idle-advance the
    clock when the server is ahead of the arrival process. Returns the
    final statistics snapshot. [on_job_done] fires after each completed
    job, after the workload's own bookkeeping (the CLI's
    [--crash-after] hook). [on_cycle] fires once per serve-loop
    iteration (after any dispatch) — the live dashboard's snapshot
    hook; it must not mutate the server. *)
val run :
  ?on_job_done:(Job.t -> unit) ->
  ?on_cycle:(unit -> unit) ->
  t ->
  Workload.t ->
  Server_stats.t

(** Journaled completions from [expect] not yet retraced by this run.
    Zero after a finished recovery means the redo reproduced the
    original run's entire completion prefix. *)
val unverified : t -> int

(** Statistics snapshot (including runtime recovery counters) at any
    point. *)
val stats : t -> Server_stats.t
