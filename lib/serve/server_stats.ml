module Hist = Exochi_obs.Hist
module J = Exochi_obs.Tiny_json

type tenant = {
  t_name : string;
  t_submitted : int;
  t_completed : int;
  t_shed : int;
  t_shreds : int;
  t_deadline_met : int;
  t_lat_mean_ps : float;
  t_goodput_jps : float;
}

type recovery = {
  r_faults_injected : int;
  r_redispatches : int;
  r_doorbell_redeliveries : int;
  r_watchdog_kills : int;
  r_quarantined_seqs : int;
  r_fallback_shreds : int;
  r_atr_retries : int;
  r_fatal : int;
  r_sdc_corrupted : int;
  r_sdc_detected : int;
  r_audit_shreds : int;
  r_hedges : int;
  r_hedge_wins : int;
  r_breaker_opens : int;
  r_breaker_closes : int;
}

type t = {
  span_ps : int;
  submitted : int;
  admitted : int;
  completed : int;
  shed : int;
  sheds : (string * int) list;
  requeued : int;
  batches : int;
  batch_jobs_mean : float;
  batch_shreds_mean : float;
  shreds_completed : int;
  throughput_jps : float;
  goodput_jps : float;
  lat_p50_ps : float;
  lat_p95_ps : float;
  lat_p99_ps : float;
  lat_mean_ps : float;
  queue_depth_max : int;
  queue_depth_mean : float;
  tenants : tenant list;
  recovery : recovery;
}

(* per-tenant mutable accumulators, grown on demand *)
type tacc = {
  mutable a_submitted : int;
  mutable a_completed : int;
  mutable a_shed : int;
  mutable a_shreds : int;
  mutable a_deadline_met : int;
  mutable a_lat_sum : float;
}

type collector = {
  mutable c_submitted : int;
  mutable c_admitted : int;
  mutable c_completed : int;
  mutable c_shed : int;
  c_sheds : (string, int) Hashtbl.t;
  mutable c_requeued : int;
  mutable c_batches : int;
  mutable c_batch_jobs : int;
  mutable c_batch_shreds : int;
  mutable c_shreds_completed : int;
  (* streaming latency histogram: O(1) per completion, quantiles on
     demand without the sort-per-query of a raw sample list *)
  c_lats : Hist.t;
  mutable c_depth_max : int;
  mutable c_depth_sum : int;
  mutable c_depth_samples : int;
  mutable c_first_ps : int; (* earliest submission seen *)
  mutable c_last_ps : int; (* latest completion / shed *)
  mutable c_tenants : tacc array;
}

let collector () =
  {
    c_submitted = 0;
    c_admitted = 0;
    c_completed = 0;
    c_shed = 0;
    c_sheds = Hashtbl.create 8;
    c_requeued = 0;
    c_batches = 0;
    c_batch_jobs = 0;
    c_batch_shreds = 0;
    c_shreds_completed = 0;
    c_lats = Hist.create ();
    c_depth_max = 0;
    c_depth_sum = 0;
    c_depth_samples = 0;
    c_first_ps = max_int;
    c_last_ps = 0;
    c_tenants = [||];
  }

let tacc c tenant =
  if tenant >= Array.length c.c_tenants then begin
    let grown =
      Array.init (tenant + 1) (fun i ->
          if i < Array.length c.c_tenants then c.c_tenants.(i)
          else
            {
              a_submitted = 0;
              a_completed = 0;
              a_shed = 0;
              a_shreds = 0;
              a_deadline_met = 0;
              a_lat_sum = 0.0;
            })
    in
    c.c_tenants <- grown
  end;
  c.c_tenants.(tenant)

let record_submit c (job : Job.t) =
  c.c_submitted <- c.c_submitted + 1;
  c.c_first_ps <- min c.c_first_ps job.submit_ps;
  c.c_last_ps <- max c.c_last_ps job.submit_ps;
  (tacc c job.tenant).a_submitted <- (tacc c job.tenant).a_submitted + 1

let record_admit c (_job : Job.t) = c.c_admitted <- c.c_admitted + 1

let record_shed c (job : Job.t) reason ~now_ps =
  c.c_shed <- c.c_shed + 1;
  c.c_last_ps <- max c.c_last_ps now_ps;
  let label = Job.reason_label reason in
  Hashtbl.replace c.c_sheds label
    (1 + Option.value (Hashtbl.find_opt c.c_sheds label) ~default:0);
  (tacc c job.tenant).a_shed <- (tacc c job.tenant).a_shed + 1

let record_requeue c (_job : Job.t) = c.c_requeued <- c.c_requeued + 1

let record_batch c ~jobs ~shreds =
  c.c_batches <- c.c_batches + 1;
  c.c_batch_jobs <- c.c_batch_jobs + jobs;
  c.c_batch_shreds <- c.c_batch_shreds + shreds

let record_completion c (job : Job.t) ~done_ps =
  c.c_completed <- c.c_completed + 1;
  c.c_shreds_completed <- c.c_shreds_completed + job.shreds;
  c.c_last_ps <- max c.c_last_ps done_ps;
  let lat = float_of_int (done_ps - job.submit_ps) in
  Hist.record c.c_lats lat;
  let a = tacc c job.tenant in
  a.a_completed <- a.a_completed + 1;
  a.a_shreds <- a.a_shreds + job.shreds;
  a.a_lat_sum <- a.a_lat_sum +. lat;
  match job.deadline_ps with
  | Some d when done_ps > d -> ()
  | _ -> a.a_deadline_met <- a.a_deadline_met + 1

let sample_depth c depth =
  c.c_depth_max <- max c.c_depth_max depth;
  c.c_depth_sum <- c.c_depth_sum + depth;
  c.c_depth_samples <- c.c_depth_samples + 1

let per_second count span_ps =
  if span_ps <= 0 then 0.0 else float_of_int count *. 1e12 /. float_of_int span_ps

let finalise c ~tenant_names ~recovery =
  let span =
    if c.c_first_ps = max_int then 0 else max 0 (c.c_last_ps - c.c_first_ps)
  in
  let pct p = Hist.quantile c.c_lats p in
  let deadline_met =
    Array.fold_left (fun n a -> n + a.a_deadline_met) 0 c.c_tenants
  in
  let tenants =
    List.init
      (max (Array.length tenant_names) (Array.length c.c_tenants))
      (fun i ->
        let a =
          if i < Array.length c.c_tenants then c.c_tenants.(i)
          else
            {
              a_submitted = 0;
              a_completed = 0;
              a_shed = 0;
              a_shreds = 0;
              a_deadline_met = 0;
              a_lat_sum = 0.0;
            }
        in
        {
          t_name =
            (if i < Array.length tenant_names then tenant_names.(i)
             else Printf.sprintf "tenant%d" i);
          t_submitted = a.a_submitted;
          t_completed = a.a_completed;
          t_shed = a.a_shed;
          t_shreds = a.a_shreds;
          t_deadline_met = a.a_deadline_met;
          t_lat_mean_ps =
            (if a.a_completed = 0 then 0.0
             else a.a_lat_sum /. float_of_int a.a_completed);
          t_goodput_jps = per_second a.a_deadline_met span;
        })
  in
  {
    span_ps = span;
    submitted = c.c_submitted;
    admitted = c.c_admitted;
    completed = c.c_completed;
    shed = c.c_shed;
    sheds =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.c_sheds []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    requeued = c.c_requeued;
    batches = c.c_batches;
    batch_jobs_mean =
      (if c.c_batches = 0 then 0.0
       else float_of_int c.c_batch_jobs /. float_of_int c.c_batches);
    batch_shreds_mean =
      (if c.c_batches = 0 then 0.0
       else float_of_int c.c_batch_shreds /. float_of_int c.c_batches);
    shreds_completed = c.c_shreds_completed;
    throughput_jps = per_second c.c_completed span;
    goodput_jps = per_second deadline_met span;
    lat_p50_ps = pct 50.0;
    lat_p95_ps = pct 95.0;
    lat_p99_ps = pct 99.0;
    lat_mean_ps = Hist.mean c.c_lats;
    queue_depth_max = c.c_depth_max;
    queue_depth_mean =
      (if c.c_depth_samples = 0 then 0.0
       else float_of_int c.c_depth_sum /. float_of_int c.c_depth_samples);
    tenants;
    recovery;
  }

(* ---- rendering ---- *)

let ms ps = float_of_int ps /. 1e9
let us f = f /. 1e6

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "serve window : %.3f ms simulated" (ms t.span_ps);
  line "jobs         : %d submitted, %d admitted, %d completed, %d shed%s"
    t.submitted t.admitted t.completed t.shed
    (if t.requeued > 0 then Printf.sprintf " (%d requeued)" t.requeued else "");
  if t.sheds <> [] then
    line "shed reasons : %s"
      (String.concat ", "
         (List.map (fun (r, n) -> Printf.sprintf "%s x%d" r n) t.sheds));
  line "throughput   : %.0f jobs/s (goodput %.0f jobs/s), %d shred(s) served"
    t.throughput_jps t.goodput_jps t.shreds_completed;
  if t.completed > 0 then
    line "job latency  : p50 %.1f us  p95 %.1f us  p99 %.1f us  (mean %.1f us)"
      (us t.lat_p50_ps) (us t.lat_p95_ps) (us t.lat_p99_ps) (us t.lat_mean_ps);
  if t.batches > 0 then
    line "batching     : %d team(s); %.1f job(s) and %.1f shred(s) per team"
      t.batches t.batch_jobs_mean t.batch_shreds_mean;
  line "queue depth  : max %d, mean %.1f" t.queue_depth_max t.queue_depth_mean;
  List.iter
    (fun ten ->
      line
        "tenant       : %-10s %4d sub %4d done %4d shed %6d shreds  goodput \
         %.0f jobs/s  mean lat %.1f us"
        ten.t_name ten.t_submitted ten.t_completed ten.t_shed ten.t_shreds
        ten.t_goodput_jps (us ten.t_lat_mean_ps))
    t.tenants;
  let r = t.recovery in
  if r.r_faults_injected > 0 || r.r_fatal > 0 then
    line
      "recovery     : %d fault(s) injected; %d redispatch(es), %d doorbell \
       re-ring(s), %d watchdog kill(s), %d quarantined, %d IA32 fallback(s), \
       %d ATR retry(ies), %d fatal"
      r.r_faults_injected r.r_redispatches r.r_doorbell_redeliveries
      r.r_watchdog_kills r.r_quarantined_seqs r.r_fallback_shreds
      r.r_atr_retries r.r_fatal;
  if
    r.r_sdc_corrupted > 0 || r.r_sdc_detected > 0 || r.r_audit_shreds > 0
    || r.r_hedges > 0 || r.r_breaker_opens > 0
  then
    line
      "guard        : %d corruption(s), %d detected; %d audit shred(s); %d \
       hedge(s) (%d won); breakers %d open / %d close"
      r.r_sdc_corrupted r.r_sdc_detected r.r_audit_shreds r.r_hedges
      r.r_hedge_wins r.r_breaker_opens r.r_breaker_closes;
  Buffer.contents b

let to_json ?(extra = []) t =
  let n f = J.Num f in
  let i v = J.Num (float_of_int v) in
  let tenant_obj ten =
    J.Obj
      [
        ("name", J.Str ten.t_name);
        ("submitted", i ten.t_submitted);
        ("completed", i ten.t_completed);
        ("shed", i ten.t_shed);
        ("shreds", i ten.t_shreds);
        ("deadline_met", i ten.t_deadline_met);
        ("lat_mean_ps", n ten.t_lat_mean_ps);
        ("goodput_jps", n ten.t_goodput_jps);
      ]
  in
  let r = t.recovery in
  let fields =
    List.map (fun (k, v) -> (k, J.Str v)) extra
    @ [
        ("span_ps", i t.span_ps);
        ("submitted", i t.submitted);
        ("admitted", i t.admitted);
        ("completed", i t.completed);
        ("shed", i t.shed);
      ]
    @ List.map (fun (rn, c) -> ("shed_" ^ rn, i c)) t.sheds
    @ [
        ("requeued", i t.requeued);
        ("batches", i t.batches);
        ("batch_jobs_mean", n t.batch_jobs_mean);
        ("batch_shreds_mean", n t.batch_shreds_mean);
        ("shreds_completed", i t.shreds_completed);
        ("throughput_jps", n t.throughput_jps);
        ("goodput_jps", n t.goodput_jps);
        ("lat_p50_ps", n t.lat_p50_ps);
        ("lat_p95_ps", n t.lat_p95_ps);
        ("lat_p99_ps", n t.lat_p99_ps);
        ("lat_mean_ps", n t.lat_mean_ps);
        ("queue_depth_max", i t.queue_depth_max);
        ("queue_depth_mean", n t.queue_depth_mean);
        ("tenants", J.Arr (List.map tenant_obj t.tenants));
        ("faults_injected", i r.r_faults_injected);
        ("redispatches", i r.r_redispatches);
        ("doorbell_redeliveries", i r.r_doorbell_redeliveries);
        ("watchdog_kills", i r.r_watchdog_kills);
        ("quarantined_seqs", i r.r_quarantined_seqs);
        ("fallback_shreds", i r.r_fallback_shreds);
        ("atr_retries", i r.r_atr_retries);
        ("fatal", i r.r_fatal);
        ("sdc_corrupted", i r.r_sdc_corrupted);
        ("sdc_detected", i r.r_sdc_detected);
        ("audit_shreds", i r.r_audit_shreds);
        ("hedges", i r.r_hedges);
        ("hedge_wins", i r.r_hedge_wins);
        ("breaker_opens", i r.r_breaker_opens);
        ("breaker_closes", i r.r_breaker_closes);
      ]
  in
  J.to_string ~indent:2 (J.Obj fields)
