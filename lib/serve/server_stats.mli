(** Serving metrics: throughput, latency percentiles, queue depth, shed
    accounting, per-tenant goodput and the CHI runtime's degraded-mode
    recovery counters, all on the {e simulated} clock.

    The server feeds a {!collector} as it runs; {!finalise} folds it
    into an immutable snapshot. Rendering and JSON are deterministic:
    equal runs serialise to identical bytes (the bench relies on it). *)

type tenant = {
  t_name : string;
  t_submitted : int;
  t_completed : int;
  t_shed : int;
  t_shreds : int;  (** exo-sequencer shreds served *)
  t_deadline_met : int;  (** completions at or before their deadline *)
  t_lat_mean_ps : float;
  t_goodput_jps : float;  (** deadline-met completions per simulated s *)
}

(** Recovery activity copied out of the runtime/platform so degraded-mode
    serving is visible in the serving report itself. *)
type recovery = {
  r_faults_injected : int;
  r_redispatches : int;
  r_doorbell_redeliveries : int;
  r_watchdog_kills : int;
  r_quarantined_seqs : int;
  r_fallback_shreds : int;
  r_atr_retries : int;
  r_fatal : int;
  r_sdc_corrupted : int;
      (** output bytes flipped by the SDC model (ground truth) *)
  r_sdc_detected : int;
      (** corruptions caught by checksum/audit — equal to
          [r_sdc_corrupted] when the guard is on: zero escapes *)
  r_audit_shreds : int;  (** golden-replay audit executions charged *)
  r_hedges : int;  (** straggler shreds given a backup dispatch *)
  r_hedge_wins : int;  (** hedge races resolved by a retirement *)
  r_breaker_opens : int;  (** circuit-breaker trips *)
  r_breaker_closes : int;  (** probationary slot reinstatements *)
}

type t = {
  span_ps : int;  (** first submission .. last recorded activity *)
  submitted : int;
  admitted : int;
  completed : int;
  shed : int;
  sheds : (string * int) list;  (** per {!Job.reason_label}, name-sorted *)
  requeued : int;  (** dispatch-failure re-queues (jobs kept, not lost) *)
  batches : int;
  batch_jobs_mean : float;
  batch_shreds_mean : float;
  shreds_completed : int;
  throughput_jps : float;  (** completions per simulated second *)
  goodput_jps : float;  (** deadline-met completions per simulated second *)
  lat_p50_ps : float;
  lat_p95_ps : float;
  lat_p99_ps : float;
  lat_mean_ps : float;
  queue_depth_max : int;
  queue_depth_mean : float;  (** sampled once per dispatch cycle *)
  tenants : tenant list;  (** tenant-id order *)
  recovery : recovery;
}

type collector

val collector : unit -> collector
val record_submit : collector -> Job.t -> unit
val record_admit : collector -> Job.t -> unit
val record_shed : collector -> Job.t -> Job.shed_reason -> now_ps:int -> unit
val record_requeue : collector -> Job.t -> unit
val record_batch : collector -> jobs:int -> shreds:int -> unit
val record_completion : collector -> Job.t -> done_ps:int -> unit
val sample_depth : collector -> int -> unit

val finalise :
  collector -> tenant_names:string array -> recovery:recovery -> t

(** Multi-line human report. *)
val render : t -> string

(** Deterministic JSON object (via {!Exochi_obs.Tiny_json}); [extra]
    string fields are emitted first. Shed reasons appear as
    [shed_<label>] fields, recovery counters under their runtime names
    ([redispatches], [fallback_shreds], [fatal], ...). *)
val to_json : ?extra:(string * string) list -> t -> string
