type config = { name : string; weight : float; queue_cap : int }

let make_config ?(weight = 1.0) ?(queue_cap = 64) name =
  if weight <= 0.0 then invalid_arg "Tenant.make_config: weight must be > 0";
  if queue_cap < 0 then invalid_arg "Tenant.make_config: queue_cap";
  { name; weight; queue_cap }

let classes = 3

type t = {
  id : int;
  config : config;
  queues : Job.t list array; (* one EDF-sorted list per priority rank *)
  mutable served : int;
}

let create ~id config =
  { id; config; queues = Array.make classes []; served = 0 }

let id t = t.id
let name t = t.config.name
let config t = t.config
let depth t = Array.fold_left (fun n q -> n + List.length q) 0 t.queues

let rec insert_edf job = function
  | [] -> [ job ]
  | j :: rest as q ->
    if Job.compare_edf job j < 0 then job :: q else j :: insert_edf job rest

let enqueue t job =
  let r = Job.priority_rank job.Job.priority in
  t.queues.(r) <- insert_edf job t.queues.(r)

(* A re-queued job outranks everything later-submitted in its class: we
   prepend, which preserves EDF order among re-queued jobs because the
   dispatcher re-queues a failed batch in dispatch order. *)
let requeue t job =
  let r = Job.priority_rank job.Job.priority in
  t.queues.(r) <- job :: t.queues.(r)

let head t =
  let rec go r =
    if r >= classes then None
    else match t.queues.(r) with j :: _ -> Some j | [] -> go (r + 1)
  in
  go 0

let take t ~kernel ~max_shreds =
  let rec pick acc = function
    | [] -> None
    | j :: rest ->
      if j.Job.kernel = kernel && j.Job.shreds <= max_shreds then
        Some (j, List.rev_append acc rest)
      else pick (j :: acc) rest
  in
  let rec go r =
    if r >= classes then None
    else
      match pick [] t.queues.(r) with
      | Some (j, rest) ->
        t.queues.(r) <- rest;
        Some j
      | None -> go (r + 1)
  in
  go 0

let drop_expired t ~now_ps =
  let dropped = ref [] in
  for r = 0 to classes - 1 do
    let live, dead =
      List.partition (fun j -> not (Job.expired j ~now_ps)) t.queues.(r)
    in
    t.queues.(r) <- live;
    dropped := !dropped @ dead
  done;
  !dropped

let vtime t = float_of_int t.served /. t.config.weight
let charge t ~shreds = t.served <- t.served + shreds
let served_shreds t = t.served
