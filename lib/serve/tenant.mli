(** Per-tenant queue state for the Exo-serve scheduler.

    Each tenant owns one bounded queue per priority class, kept in
    earliest-deadline-first order, plus the weighted-fair-share
    accounting the batcher uses: a tenant's {e virtual time} is the
    shreds it has been served divided by its weight, and the batcher
    always serves the tenant with the smallest virtual time first, so
    a weight-3 tenant receives ~3x the exo-sequencer shreds of a
    weight-1 tenant under contention while an idle tenant's unused
    share is redistributed. *)

type config = {
  name : string;
  weight : float;  (** fair-share weight (> 0); default 1.0 *)
  queue_cap : int;
      (** admission bound on queued jobs across all classes; 0 sheds
          everything (maintenance mode) *)
}

val make_config : ?weight:float -> ?queue_cap:int -> string -> config

type t

val create : id:int -> config -> t
val id : t -> int
val name : t -> string
val config : t -> config

(** Jobs currently queued across all priority classes. *)
val depth : t -> int

(** Queue a job into its priority class (EDF position). The caller has
    already passed admission — no capacity check here. *)
val enqueue : t -> Job.t -> unit

(** Re-queue a job at the {e front} of its class after a failed dispatch
    (it keeps its original EDF position among equals but outranks
    later-submitted work). *)
val requeue : t -> Job.t -> unit

(** Highest-class, earliest-deadline queued job, if any (not removed). *)
val head : t -> Job.t option

(** Remove and return the first queued job (class-major, EDF order)
    running [kernel] with [shreds <= max_shreds]. *)
val take : t -> kernel:string -> max_shreds:int -> Job.t option

(** Remove and return every queued job whose deadline has passed. *)
val drop_expired : t -> now_ps:int -> Job.t list

(** Weighted virtual time: shreds served / weight. *)
val vtime : t -> float

(** Account [shreds] served to this tenant (advances virtual time). *)
val charge : t -> shreds:int -> unit

val served_shreds : t -> int
