module Prng = Exochi_util.Prng

type mode =
  | Open of { rate_jps : float }
  | Closed of { clients_per_tenant : int; think_ps : int }

type spec = {
  seed : int64;
  tenants : int;
  jobs : int;
  mix : (string * float) list;
  shreds_lo : int;
  shreds_hi : int;
  p_high : float;
  p_low : float;
  deadline_slack_ps : int option;
  mode : mode;
}

let default_spec ?(seed = 42L) ?(tenants = 2) ~jobs mode =
  {
    seed;
    tenants;
    jobs;
    mix = [ ("SepiaTone", 3.0); ("LinearFilter", 1.0) ];
    shreds_lo = 4;
    shreds_hi = 32;
    p_high = 0.2;
    p_low = 0.2;
    deadline_slack_ps = None;
    mode;
  }

type pending = { at_ps : int; job : Job.t }

type t = {
  spec : spec;
  prng : Prng.t;
  mutable queue : pending list; (* sorted by (at_ps, job.id) *)
  mutable generated : int;
  mutable started : bool;
}

let validate spec =
  if spec.tenants <= 0 then invalid_arg "Workload: tenants";
  if spec.jobs < 0 then invalid_arg "Workload: jobs";
  if spec.mix = [] then invalid_arg "Workload: empty kernel mix";
  List.iter
    (fun (_, w) -> if w <= 0.0 then invalid_arg "Workload: mix weight")
    spec.mix;
  if spec.shreds_lo <= 0 || spec.shreds_hi < spec.shreds_lo then
    invalid_arg "Workload: shred bounds";
  if spec.p_high < 0.0 || spec.p_low < 0.0 || spec.p_high +. spec.p_low > 1.0
  then invalid_arg "Workload: priority probabilities";
  (match spec.mode with
  | Open { rate_jps } ->
    if rate_jps <= 0.0 then invalid_arg "Workload: rate_jps"
  | Closed { clients_per_tenant; think_ps } ->
    if clients_per_tenant <= 0 then invalid_arg "Workload: clients";
    if think_ps < 0 then invalid_arg "Workload: think_ps")

let rec insert p = function
  | [] -> [ p ]
  | q :: rest as l ->
    if
      p.at_ps < q.at_ps || (p.at_ps = q.at_ps && p.job.Job.id < q.job.Job.id)
    then p :: l
    else q :: insert p rest

(* One fresh job, consuming a fixed number of PRNG draws per call so the
   schedule stays deterministic regardless of consumer behaviour. *)
let draw_job t ~tenant ~at_ps =
  let s = t.spec in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 s.mix in
  let x = Prng.float t.prng *. total in
  let kernel =
    let rec pick acc = function
      | [ (k, _) ] -> k
      | (k, w) :: rest -> if x < acc +. w then k else pick (acc +. w) rest
      | [] -> assert false
    in
    pick 0.0 s.mix
  in
  let shreds = s.shreds_lo + Prng.int t.prng (s.shreds_hi - s.shreds_lo + 1) in
  let p = Prng.float t.prng in
  let priority =
    if p < s.p_high then Job.High
    else if p < s.p_high +. s.p_low then Job.Low
    else Job.Normal
  in
  let deadline_ps =
    match s.deadline_slack_ps with
    | None -> None
    | Some base -> Some (at_ps + base + Prng.int t.prng (max 1 base))
  in
  let id = t.generated in
  t.generated <- t.generated + 1;
  { Job.id; tenant; kernel; shreds; priority; submit_ps = at_ps; deadline_ps }

let schedule t ~tenant ~at_ps =
  if t.generated < t.spec.jobs then
    let job = draw_job t ~tenant ~at_ps in
    t.queue <- insert { at_ps; job } t.queue

let create spec =
  validate spec;
  { spec; prng = Prng.create spec.seed; queue = []; generated = 0;
    started = false }

let kernels t = List.map fst t.spec.mix

let start t ~now_ps =
  if t.started then invalid_arg "Workload.start: already started";
  t.started <- true;
  match t.spec.mode with
  | Open { rate_jps } ->
    (* exponential inter-arrival gaps; tenant drawn uniformly *)
    let mean_gap_ps = 1e12 /. rate_jps in
    let at = ref now_ps in
    for _ = 1 to t.spec.jobs do
      let u = Prng.float t.prng in
      let gap = -.mean_gap_ps *. log (1.0 -. u) in
      at := !at + max 1 (int_of_float gap);
      let tenant = Prng.int t.prng t.spec.tenants in
      schedule t ~tenant ~at_ps:!at
    done
  | Closed { clients_per_tenant; think_ps = _ } ->
    (* every client submits its first job straight away, staggered by
       1 ns so ties are broken deterministically *)
    for tenant = 0 to t.spec.tenants - 1 do
      for c = 0 to clients_per_tenant - 1 do
        let stagger = ((tenant * clients_per_tenant) + c) * 1_000 in
        schedule t ~tenant ~at_ps:(now_ps + stagger)
      done
    done

let peek_time t =
  match t.queue with [] -> None | p :: _ -> Some p.at_ps

let pop t =
  match t.queue with
  | [] -> None
  | p :: rest ->
    t.queue <- rest;
    Some p.job

let release t job ~now_ps =
  match t.spec.mode with
  | Open _ -> ()
  | Closed { think_ps; _ } ->
    schedule t ~tenant:job.Job.tenant ~at_ps:(now_ps + think_ps)

let on_complete = release
let on_shed = release
let generated t = t.generated
