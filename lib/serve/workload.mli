(** Deterministic open- and closed-loop load generation for Exo-serve.

    All randomness (inter-arrival gaps, kernel mix, shred counts,
    priorities, deadline slack) comes from one {!Exochi_util.Prng}
    stream, so a fixed seed yields a bit-identical submission schedule
    and — because the platform simulator is deterministic — bit-identical
    serving results.

    - {b Open loop} models arrival-rate-driven traffic: [jobs]
      submissions with exponential inter-arrival gaps at [rate_jps]
      jobs per {e simulated} second, generated up front. Offered load
      does not react to server latency, so overload exposes queueing,
      shedding and deadline misses.
    - {b Closed loop} models concurrency-driven traffic: a fixed fleet
      of clients per tenant, each submitting its next job [think_ps]
      after its previous one completes (or is shed). Throughput
      saturates at the platform's capacity — the generator used to
      measure it. *)

type mode =
  | Open of { rate_jps : float }
  | Closed of { clients_per_tenant : int; think_ps : int }

type spec = {
  seed : int64;
  tenants : int;
  jobs : int;  (** total submissions across all tenants *)
  mix : (string * float) list;  (** kernel abbrev, weight (> 0) *)
  shreds_lo : int;  (** inclusive bounds on per-job shred count *)
  shreds_hi : int;
  p_high : float;  (** probability of [High] priority *)
  p_low : float;  (** probability of [Low]; rest are [Normal] *)
  deadline_slack_ps : int option;
      (** deadline = submit + slack, slack uniform in [base, 2*base);
          [None] = no deadlines *)
  mode : mode;
}

(** 2 tenants, SepiaTone/LinearFilter mix, 4–32 shreds/job, 20%
    high / 20% low priority, no deadlines. *)
val default_spec : ?seed:int64 -> ?tenants:int -> jobs:int -> mode -> spec

type t

val create : spec -> t

(** Distinct kernels the generator can draw (for arena pre-warming). *)
val kernels : t -> string list

(** Rebase the schedule onto the simulated clock: submission times were
    generated as offsets from zero; [start t ~now_ps] pins offset 0 to
    [now_ps] and (closed loop) seeds every client's first submission.
    Must be called exactly once before {!pop}. *)
val start : t -> now_ps:int -> unit

(** Earliest pending submission time, if any. *)
val peek_time : t -> int option

(** Remove and return the earliest pending submission. *)
val pop : t -> Job.t option

(** Closed loop: the client that owned [job] thinks, then submits its
    next job (while the overall budget lasts). No-op in open loop. *)
val on_complete : t -> Job.t -> now_ps:int -> unit

(** Closed loop: a shed job also releases its client. *)
val on_shed : t -> Job.t -> now_ps:int -> unit

(** Submissions generated so far (≤ [spec.jobs]). *)
val generated : t -> int
