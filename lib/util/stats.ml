let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = check_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = check_nonempty "Stats.geomean" xs in
  List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive") xs;
  exp (mean (List.map log xs))

let stddev xs =
  let m = mean xs in
  let sq = List.map (fun x -> (x -. m) ** 2.0) xs in
  sqrt (mean sq)

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let xs = check_nonempty "Stats.percentile" xs in
  (* Float.compare, not polymorphic compare: the generic compare goes
     through the runtime's structural comparison for boxed floats, and
     gives unspecified order on nan (which would silently poison the
     interpolation below rather than sorting nan consistently last). *)
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let min_max xs =
  let xs = check_nonempty "Stats.min_max" xs in
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (List.hd xs, List.hd xs)
    xs
