(** Small statistics helpers for the benchmark harness and the simulator's
    performance counters. *)

(** Arithmetic mean. Raises [Invalid_argument] on an empty list. *)
val mean : float list -> float

(** Geometric mean; all inputs must be positive. The paper's aggregate
    memory-model ratios (70.5%, 85.3%) are means across kernels; we report
    both arithmetic and geometric. *)
val geomean : float list -> float

(** Population standard deviation. *)
val stddev : float list -> float

(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation.
    Sorts with [Float.compare] (total order, nan sorted consistently),
    never the polymorphic [compare]. *)
val percentile : float -> float list -> float

(** Min and max of a non-empty list. Uses [Float.min]/[Float.max], so a
    nan anywhere in the input propagates to both components — callers
    feed simulator-derived latencies, which are always finite. *)
val min_max : float list -> float * float
