open Exochi_memory
open Exochi_isa
module Gpu = Exochi_accel.Gpu
module Lane = Exochi_accel.Lane

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A self-contained GPU rig with an identity ATR (no CPU in the loop) and a
   recording CEH. *)
type rig = {
  aspace : Address_space.t;
  gpu : Gpu.t;
  atr_count : int ref;
  ceh_count : int ref;
}

let make_rig ?config () =
  let mem = Phys_mem.create ~frames:4096 in
  let aspace = Address_space.create mem in
  let bus = Bus.create ~gbps:8.0 ~latency_ps:90_000 in
  let atr_count = ref 0 and ceh_count = ref 0 in
  let hooks =
    {
      Gpu.atr =
        (fun ~vpage ~now_ps ->
          incr atr_count;
          ignore
            (try Address_space.fault_in aspace ~vaddr:(vpage lsl 12)
             with Address_space.Segfault _ -> `Already);
          match Page_table.walk (Address_space.page_table aspace) ~vpage with
          | Page_table.Mapped pte ->
            (Some (Pte.transcode pte ~tiling:Pte.X3k.Linear), now_ps + 200_000)
          | _ -> (None, now_ps));
      ceh =
        (fun req ~now_ps ->
          incr ceh_count;
          let open X3k_ast in
          let lanes = Array.length req.Gpu.lane_a in
          let results =
            Array.init lanes (fun j ->
                match req.Gpu.fault_op with
                | Fdiv -> Lane.fdiv_ieee req.Gpu.lane_a.(j) req.Gpu.lane_b.(j)
                | Fsqrt -> Lane.fsqrt_ieee req.Gpu.lane_a.(j)
                | _ -> 0)
          in
          (results, now_ps + 500_000));
      ceh_spurious = (fun ~now_ps -> now_ps + 500_000);
      mem_delay = (fun ~paddr:_ ~bytes:_ ~write:_ ~now_ps:_ -> 0);
      on_shred_done = (fun _ ~now_ps:_ -> ());
    }
  in
  let gpu = Gpu.create ?config ~aspace ~bus ~hooks () in
  { aspace; gpu; atr_count; ceh_count }

let alloc_surface rig name ~width ~height ~bpp =
  let pitch = Surface.required_pitch ~width ~bpp ~tiling:Surface.Linear in
  let base =
    Address_space.alloc rig.aspace ~name ~bytes:(pitch * height) ~align:64
  in
  Surface.make ~id:1 ~name ~base ~width ~height ~bpp ~tiling:Surface.Linear
    ~mode:Surface.In_out

let run_one rig src ~surfaces ~params =
  let prog = X3k_asm.assemble_exn ~name:"t" src in
  Gpu.bind rig.gpu ~prog ~surfaces;
  Gpu.enqueue rig.gpu [ { Gpu.shred_id = 0; entry = 0; params } ];
  ignore (Gpu.run_to_quiescence rig.gpu)

let rd32 rig s ~x ~y =
  Int32.to_int
    (Address_space.read_u32 rig.aspace (Surface.element_addr s ~x ~y))

let wr32 rig s ~x ~y v =
  Address_space.write_u32 rig.aspace (Surface.element_addr s ~x ~y) (Int32.of_int v)

(* ---- basic execution ---- *)

let test_vector_add_fig6 () =
  let rig = make_rig () in
  let a = alloc_surface rig "A" ~width:64 ~height:1 ~bpp:4 in
  let b = alloc_surface rig "B" ~width:64 ~height:1 ~bpp:4 in
  let c = alloc_surface rig "C" ~width:64 ~height:1 ~bpp:4 in
  for i = 0 to 63 do
    wr32 rig a ~x:i ~y:0 i;
    wr32 rig b ~x:i ~y:0 (1000 * i)
  done;
  let prog =
    X3k_asm.assemble_exn ~name:"vadd"
      {|
  shl.1.dw   vr1 = %p0, 3
  ld.8.dw    [vr2..vr9] = (A, vr1, 0)
  ld.8.dw    [vr10..vr17] = (B, vr1, 0)
  add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw    (C, vr1, 0) = [vr18..vr25]
  end
|}
  in
  Gpu.bind rig.gpu ~prog ~surfaces:[| a; b; c |];
  Gpu.enqueue rig.gpu
    (List.init 8 (fun i -> { Gpu.shred_id = i; entry = 0; params = [| i |] }));
  ignore (Gpu.run_to_quiescence rig.gpu);
  for i = 0 to 63 do
    check_int (Printf.sprintf "c[%d]" i) (1001 * i) (rd32 rig c ~x:i ~y:0)
  done;
  check_int "all shreds completed" 8 (Gpu.shreds_completed rig.gpu)

let test_special_registers () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:16 ~height:4 ~bpp:4 in
  let src =
    {|
  mov.1.dw vr1 = %sid
  st.1.dw (O, vr1, 0) = %sid
  add.1.dw vr2 = vr1, 4
  st.1.dw (O, vr2, 0) = %nshred
  bcast.16.dw vr3 = 0
  add.16.dw vr3 = vr3, %lane
  add.1.dw vr4 = vr1, 8
  shl.1.dw vr4 = vr4, 0
  end
|}
  in
  let prog = X3k_asm.assemble_exn ~name:"t" src in
  Gpu.bind rig.gpu ~prog ~surfaces:[| out |];
  Gpu.enqueue rig.gpu
    (List.init 4 (fun i -> { Gpu.shred_id = i; entry = 0; params = [||] }));
  ignore (Gpu.run_to_quiescence rig.gpu);
  for i = 0 to 3 do
    check_int "sid" i (rd32 rig out ~x:i ~y:0);
    check_int "nshred" 4 (rd32 rig out ~x:(i + 4) ~y:0)
  done

let test_branches_and_loops () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  run_one rig
    {|
  mov.1.dw vr0 = 0
  mov.1.dw vr1 = 0
L:
  add.1.dw vr0 = vr0, vr1
  add.1.dw vr1 = vr1, 1
  cmp.lt.1.dw f0 = vr1, 10
  br.any f0, L
  st.1.dw (O, vr2, 0) = vr0
  end
|}
    ~surfaces:[| out |] ~params:[||];
  check_int "sum 0..9" 45 (rd32 rig out ~x:0 ~y:0)

let test_predication_masks_lanes () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:8 ~height:1 ~bpp:4 in
  run_one rig
    {|
  bcast.8.dw vr0 = 0
  add.8.dw vr0 = vr0, %lane
  cmp.lt.8.dw f0 = vr0, 4
  bcast.8.dw vr1 = 100
  (f0) mov.8.dw vr1 = 200
  mov.1.dw vr3 = 0
  st.8.dw (O, vr3, 0) = vr1
  end
|}
    ~surfaces:[| out |] ~params:[||];
  for i = 0 to 7 do
    check_int
      (Printf.sprintf "lane %d" i)
      (if i < 4 then 200 else 100)
      (rd32 rig out ~x:i ~y:0)
  done

let test_gather_scatter () =
  let rig = make_rig () in
  let src = alloc_surface rig "S" ~width:16 ~height:1 ~bpp:4 in
  let out = alloc_surface rig "O" ~width:16 ~height:1 ~bpp:4 in
  for i = 0 to 15 do
    wr32 rig src ~x:i ~y:0 (100 + i)
  done;
  (* reverse the array with gather (indices 15-lane) then scatter back *)
  run_one rig
    {|
  bcast.16.dw vr0 = 15
  sub.16.dw vr0 = vr0, %lane
  gather.16.dw vr1 = (S, vr0, 0)
  bcast.16.dw vr2 = 0
  add.16.dw vr2 = vr2, %lane
  scatter.16.dw (O, vr2, 0) = vr1
  end
|}
    ~surfaces:[| src; out |] ~params:[||];
  for i = 0 to 15 do
    check_int (Printf.sprintf "reversed %d" i) (100 + 15 - i)
      (rd32 rig out ~x:i ~y:0)
  done

let test_sampler_bilinear () =
  let rig = make_rig () in
  let tex = alloc_surface rig "T" ~width:4 ~height:4 ~bpp:1 in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  (* texel (0,0)=0, (1,0)=100 -> sample halfway = 50 *)
  Address_space.write_u8 rig.aspace (Surface.element_addr tex ~x:0 ~y:0) 0;
  Address_space.write_u8 rig.aspace (Surface.element_addr tex ~x:1 ~y:0) 100;
  run_one rig
    {|
  mov.1.dw vr0 = 32768
  mov.1.dw vr1 = 0
  sample.1.b vr2 = (T, vr0, vr1)
  mov.1.dw vr3 = 0
  st.1.dw (O, vr3, 0) = vr2
  end
|}
    ~surfaces:[| tex; out |] ~params:[||];
  check_int "bilinear midpoint" 50 (rd32 rig out ~x:0 ~y:0)

(* ---- CEH ---- *)

let test_ceh_fdiv_by_zero () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  run_one rig
    {|
  mov.4.f vr0 = 8.0
  mov.4.f vr1 = 0.0
  fdiv.4.f vr2 = vr0, vr1
  mov.1.dw vr3 = 0
  st.4.dw (O, vr3, 0) = vr2
  end
|}
    ~surfaces:[| out |] ~params:[||];
  check_int "one CEH proxy" 1 !(rig.ceh_count);
  let bits = rd32 rig out ~x:0 ~y:0 in
  check_bool "IEEE +inf" true
    (Int32.float_of_bits (Int32.of_int bits) = infinity)

let test_ceh_not_triggered_when_safe () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  run_one rig
    {|
  mov.4.f vr0 = 8.0
  mov.4.f vr1 = 2.0
  fdiv.4.f vr2 = vr0, vr1
  cvtfi.4.f vr2 = vr2
  mov.1.dw vr3 = 0
  st.4.dw (O, vr3, 0) = vr2
  end
|}
    ~surfaces:[| out |] ~params:[||];
  check_int "no CEH" 0 !(rig.ceh_count);
  check_int "8/2" 4 (rd32 rig out ~x:0 ~y:0)

let test_ceh_fsqrt_negative () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  run_one rig
    {|
  mov.4.f vr0 = -4.0
  fsqrt.4.f vr1 = vr0
  mov.1.dw vr3 = 0
  st.4.dw (O, vr3, 0) = vr1
  end
|}
    ~surfaces:[| out |] ~params:[||];
  check_int "one CEH proxy" 1 !(rig.ceh_count);
  let bits = rd32 rig out ~x:0 ~y:0 in
  check_bool "NaN" true (Float.is_nan (Int32.float_of_bits (Int32.of_int bits)))

(* ---- ATR ---- *)

let test_atr_lazy_translation () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:2048 ~height:4 ~bpp:4 in
  (* touch 4 rows x 2048 dwords = 32 KiB = 8 pages *)
  run_one rig
    {|
  mov.1.dw vr0 = 0
  mov.1.dw vr1 = 0
L:
  st.1.dw (O, vr0, 0) = vr1
  add.1.dw vr0 = vr0, 1024
  add.1.dw vr1 = vr1, 1
  cmp.lt.1.dw f0 = vr1, 8
  br.any f0, L
  end
|}
    ~surfaces:[| out |] ~params:[||];
  check_bool "several ATR proxies" true (!(rig.atr_count) >= 8)

let test_atr_tlb_reuse () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:64 ~height:1 ~bpp:4 in
  run_one rig
    {|
  mov.1.dw vr0 = 0
  mov.1.dw vr1 = 0
L:
  st.1.dw (O, vr1, 0) = vr1
  add.1.dw vr1 = vr1, 1
  cmp.lt.1.dw f0 = vr1, 64
  br.any f0, L
  end
|}
    ~surfaces:[| out |] ~params:[||];
  check_int "single page -> single ATR" 1 !(rig.atr_count)

let test_gpu_segfault () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  (* index far outside any region *)
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      "  mov.1.dw vr0 = 100000000\n  st.1.dw (O, vr0, 0) = vr0\n  end\n"
  in
  Gpu.bind rig.gpu ~prog ~surfaces:[| out |];
  Gpu.enqueue rig.gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  check_bool "segfault raised" true
    (try
       ignore (Gpu.run_to_quiescence rig.gpu);
       false
     with
    | Gpu.Gpu_segfault _ -> true
    | Invalid_argument _ -> true)

(* ---- synchronisation ---- *)

let test_semaphores_mutual_exclusion () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  (* 16 shreds increment a shared counter inside a critical section *)
  let src =
    {|
  sem.acq 0
  mov.1.dw vr1 = 0
  ld.1.dw vr0 = (O, vr1, 0)
  add.1.dw vr0 = vr0, 1
  st.1.dw (O, vr1, 0) = vr0
  fence
  sem.rel 0
  end
|}
  in
  let prog = X3k_asm.assemble_exn ~name:"t" src in
  Gpu.bind rig.gpu ~prog ~surfaces:[| out |];
  Gpu.enqueue rig.gpu
    (List.init 16 (fun i -> { Gpu.shred_id = i; entry = 0; params = [||] }));
  ignore (Gpu.run_to_quiescence rig.gpu);
  check_int "atomic increments" 16 (rd32 rig out ~x:0 ~y:0)

let test_sendreg_to_resident () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:4 ~height:1 ~bpp:4 in
  (* shred 1 spins until vr9 becomes nonzero (set by shred 0) *)
  let src =
    {|
  cmp.eq.1.dw f0 = %sid, 0
  br.any f0, PRODUCER
WAIT:
  cmp.eq.1.dw f1 = vr9, 0
  br.any f1, WAIT
  mov.1.dw vr1 = 0
  st.1.dw (O, vr1, 0) = vr9
  end
PRODUCER:
  mov.1.dw vr2 = 1
  mov.16.dw vr3 = 777
  sendreg @(vr2, 9) = vr3
  end
|}
  in
  let prog = X3k_asm.assemble_exn ~name:"t" src in
  Gpu.bind rig.gpu ~prog ~surfaces:[| out |];
  (* enqueue the consumer first so both are resident *)
  Gpu.enqueue rig.gpu
    [
      { Gpu.shred_id = 1; entry = 0; params = [||] };
      { Gpu.shred_id = 0; entry = 0; params = [||] };
    ];
  ignore (Gpu.run_to_quiescence rig.gpu);
  check_int "register delivered" 777 (rd32 rig out ~x:0 ~y:0)

let test_spawn_enqueues_child () =
  let rig = make_rig () in
  let out = alloc_surface rig "O" ~width:8 ~height:1 ~bpp:4 in
  let src =
    {|
  jmp PARENT
CHILD:
  mov.1.dw vr1 = 1
  st.1.dw (O, vr1, 0) = %p0
  end
PARENT:
  mov.8.dw vr2 = 0
  add.1.dw vr2 = vr2, 4242
  spawn CHILD, vr2
  mov.1.dw vr3 = 0
  st.1.dw (O, vr3, 0) = 1
  end
|}
  in
  let prog = X3k_asm.assemble_exn ~name:"t" src in
  Gpu.bind rig.gpu ~prog ~surfaces:[| out |];
  Gpu.enqueue rig.gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  ignore (Gpu.run_to_quiescence rig.gpu);
  check_int "parent ran" 1 (rd32 rig out ~x:0 ~y:0);
  check_int "child received params" 4242 (rd32 rig out ~x:1 ~y:0);
  check_int "two shreds total" 2 (Gpu.shreds_completed rig.gpu)

(* ---- dtype / lane semantics ---- *)

let prop_lane_wrap_b =
  QCheck.Test.make ~name:"lane byte wrap" ~count:500 QCheck.int (fun v ->
      let w = Lane.wrap X3k_ast.B v in
      w >= 0 && w <= 255 && w = v land 0xff)

let prop_lane_wrap_w =
  QCheck.Test.make ~name:"lane word wrap is sign-extended 16-bit" ~count:500
    QCheck.int (fun v ->
      let w = Lane.wrap X3k_ast.W v in
      w >= -32768 && w <= 32767)

let prop_lane_avg_matches_formula =
  QCheck.Test.make ~name:"byte avg" ~count:500
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) -> Lane.avg X3k_ast.B a b = (a + b + 1) / 2)

let prop_lane_sat =
  QCheck.Test.make ~name:"saturate.b clamps" ~count:500 QCheck.int (fun v ->
      let s = Lane.saturate X3k_ast.B v in
      s = max 0 (min 255 v))

let prop_lane_float_roundtrip =
  QCheck.Test.make ~name:"float lane roundtrip" ~count:300
    QCheck.(float_range (-1e6) 1e6)
    (fun f ->
      let f32 = Int32.float_of_bits (Int32.bits_of_float f) in
      Lane.float_of_lane (Lane.lane_of_float f) = f32)

(* dtype-sensitive compare: bytes are unsigned *)
let test_byte_compare_unsigned () =
  check_bool "255 > 1 as bytes" true
    (Lane.compare_lanes X3k_ast.B X3k_ast.Gt 255 1);
  check_bool "-1 wraps to 255" true
    (Lane.compare_lanes X3k_ast.B X3k_ast.Gt (Lane.wrap X3k_ast.B (-1)) 1);
  check_bool "signed dw" true (Lane.compare_lanes X3k_ast.DW X3k_ast.Lt (-1) 1)

(* ---- differential: random ALU programs vs a pure lane evaluator ---- *)

type alu_instr = {
  g_op : X3k_ast.opcode;
  g_dt : X3k_ast.dtype;
  g_dst : int;
  g_s1 : int;
  g_s2 : [ `Reg of int | `Imm of int ];
}

let alu_gen =
  QCheck.Gen.(
    let reg = int_range 1 15 in
    map
      (fun (op, dt, d, s1, s2) -> { g_op = op; g_dt = dt; g_dst = d; g_s1 = s1; g_s2 = s2 })
      (tup5
         (oneofl
            X3k_ast.
              [ Add; Sub; Mul; Min; Max; Avg; And; Or; Xor; Shl; Shr; Sar ])
         (oneofl X3k_ast.[ B; W; DW ])
         reg reg
         (frequency
            [
              (3, map (fun r -> `Reg r) reg);
              (1, map (fun i -> `Imm i) (int_range (-1000) 1000));
            ])))

let alu_to_src prog =
  let b = Buffer.create 256 in
  (* seed registers vr1..vr15 with distinct lane patterns *)
  Buffer.add_string b "  bcast.8.dw vr0 = 0
  add.8.dw vr0 = vr0, %lane
";
  for r = 1 to 15 do
    Buffer.add_string b
      (Printf.sprintf "  mul.8.dw vr%d = vr0, %d
  add.8.dw vr%d = vr%d, %d
"
         r ((r * 37) + 11) r r (r * r * 5))
  done;
  List.iter
    (fun i ->
      let s2 =
        match i.g_s2 with `Reg r -> Printf.sprintf "vr%d" r | `Imm v -> string_of_int v
      in
      Buffer.add_string b
        (Printf.sprintf "  %s.8.%s vr%d = vr%d, %s
"
           (X3k_ast.opcode_name i.g_op)
           (X3k_ast.dtype_name i.g_dt) i.g_dst i.g_s1 s2))
    prog;
  (* dump vr1..vr15 to the output surface *)
  Buffer.add_string b "  mov.1.dw vr20 = 0
";
  for r = 1 to 15 do
    Buffer.add_string b
      (Printf.sprintf "  mov.1.dw vr20 = %d
  st.8.dw (O, vr20, 0) = vr%d
"
         ((r - 1) * 8) r)
  done;
  Buffer.add_string b "  end
";
  Buffer.contents b

let alu_reference prog =
  (* the same seeding and ops, straight over Lane arithmetic *)
  let regs = Array.init 16 (fun _ -> Array.make 8 0) in
  for l = 0 to 7 do
    regs.(0).(l) <- l;
    for r = 1 to 15 do
      regs.(r).(l) <-
        Lane.add X3k_ast.DW
          (Lane.mul X3k_ast.DW l ((r * 37) + 11))
          (r * r * 5)
    done
  done;
  List.iter
    (fun i ->
      let open X3k_ast in
      let f a b =
        match i.g_op with
        | Add -> Lane.add i.g_dt a b
        | Sub -> Lane.sub i.g_dt a b
        | Mul -> Lane.mul i.g_dt a b
        | Min -> Lane.min_ i.g_dt a b
        | Max -> Lane.max_ i.g_dt a b
        | Avg -> Lane.avg i.g_dt a b
        | And -> Lane.and_ a b
        | Or -> Lane.or_ a b
        | Xor -> Lane.xor_ a b
        | Shl -> Lane.shl i.g_dt a b
        | Shr -> Lane.shr i.g_dt a b
        | Sar -> Lane.sar i.g_dt a b
        | _ -> assert false
      in
      for l = 0 to 7 do
        let b =
          match i.g_s2 with
          | `Reg r -> regs.(r).(l)
          | `Imm v -> Lane.wrap32 v
        in
        regs.(i.g_dst).(l) <- f regs.(i.g_s1).(l) b
      done)
    prog;
  regs

let prop_gpu_matches_lane_reference =
  QCheck.Test.make ~name:"GPU ALU matches pure lane evaluator" ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 1 25) alu_gen))
    (fun prog ->
      let rig = make_rig () in
      let out = alloc_surface rig "O" ~width:128 ~height:1 ~bpp:4 in
      let src = alu_to_src prog in
      let p = X3k_asm.assemble_exn ~name:"diff" src in
      Gpu.bind rig.gpu ~prog:p ~surfaces:[| out |];
      Gpu.enqueue rig.gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
      ignore (Gpu.run_to_quiescence rig.gpu);
      let expect = alu_reference prog in
      let ok = ref true in
      for r = 1 to 15 do
        for l = 0 to 7 do
          if rd32 rig out ~x:(((r - 1) * 8) + l) ~y:0 <> expect.(r).(l) then
            ok := false
        done
      done;
      !ok)

(* ---- SMT ablation sanity ---- *)

let test_smt_off_still_correct () =
  let cfg = { Gpu.default_config with switch_on_stall = false } in
  let rig = make_rig ~config:cfg () in
  let out = alloc_surface rig "O" ~width:64 ~height:1 ~bpp:4 in
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      "  mov.1.dw vr0 = %p0\n  st.1.dw (O, vr0, 0) = %sid\n  end\n"
  in
  Gpu.bind rig.gpu ~prog ~surfaces:[| out |];
  Gpu.enqueue rig.gpu
    (List.init 64 (fun i -> { Gpu.shred_id = i; entry = 0; params = [| i |] }));
  ignore (Gpu.run_to_quiescence rig.gpu);
  for i = 0 to 63 do
    check_int (Printf.sprintf "o[%d]" i) i (rd32 rig out ~x:i ~y:0)
  done

let () =
  Alcotest.run "accel"
    [
      ( "exec",
        [
          Alcotest.test_case "vector add (fig 6)" `Quick test_vector_add_fig6;
          Alcotest.test_case "special regs" `Quick test_special_registers;
          Alcotest.test_case "branches/loops" `Quick test_branches_and_loops;
          Alcotest.test_case "predication" `Quick test_predication_masks_lanes;
          Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
          Alcotest.test_case "sampler" `Quick test_sampler_bilinear;
        ] );
      ( "ceh",
        [
          Alcotest.test_case "fdiv by zero" `Quick test_ceh_fdiv_by_zero;
          Alcotest.test_case "no fault path" `Quick test_ceh_not_triggered_when_safe;
          Alcotest.test_case "fsqrt negative" `Quick test_ceh_fsqrt_negative;
        ] );
      ( "atr",
        [
          Alcotest.test_case "lazy translation" `Quick test_atr_lazy_translation;
          Alcotest.test_case "tlb reuse" `Quick test_atr_tlb_reuse;
          Alcotest.test_case "segfault" `Quick test_gpu_segfault;
        ] );
      ( "sync",
        [
          Alcotest.test_case "semaphores" `Quick test_semaphores_mutual_exclusion;
          Alcotest.test_case "sendreg" `Quick test_sendreg_to_resident;
          Alcotest.test_case "spawn" `Quick test_spawn_enqueues_child;
        ] );
      ( "lanes",
        [
          QCheck_alcotest.to_alcotest prop_lane_wrap_b;
          QCheck_alcotest.to_alcotest prop_lane_wrap_w;
          QCheck_alcotest.to_alcotest prop_lane_avg_matches_formula;
          QCheck_alcotest.to_alcotest prop_lane_sat;
          QCheck_alcotest.to_alcotest prop_lane_float_roundtrip;
          Alcotest.test_case "byte unsigned cmp" `Quick test_byte_compare_unsigned;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_gpu_matches_lane_reference ] );
      ( "smt",
        [ Alcotest.test_case "smt off correct" `Quick test_smt_off_still_correct ] );
    ]
