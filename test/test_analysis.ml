(* Exo-check analyzer tests: every rule id with at least one flagged and
   one clean program, plus the JSON findings format and the .chi line
   anchoring of section findings. *)

open Exochi_analysis
module Loc = Exochi_isa.Loc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lint_chi src =
  match Exo_check.check_source ~name:"t.chi" src with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "compile failed: %s" (Loc.error_to_string e)

let lint_x3k src =
  Exo_check.check_x3k (Exochi_isa.X3k_asm.assemble_exn ~name:"t" src)

let lint_via src =
  match Exochi_isa.Via32_asm.assemble ~name:"t" src with
  | Ok p -> Exo_check.check_via32 p
  | Error e -> Alcotest.failf "assembly failed: %s" (Loc.error_to_string e)

let fired rule findings =
  List.exists (fun f -> f.Finding.rule = rule) findings

let assert_fired rule findings =
  if not (fired rule findings) then
    Alcotest.failf "expected %s, got: [%s]" rule
      (String.concat "; " (List.map Finding.to_string findings))

let assert_quiet rule findings =
  List.iter
    (fun f ->
      if f.Finding.rule = rule then
        Alcotest.failf "unexpected %s: %s" rule (Finding.to_string f))
    findings

(* only the section/AST rules: the compiled VIA32 main section may carry
   its own EXO008..EXO010 findings, which these tests don't constrain *)
let chi_rules findings =
  List.filter (fun f -> f.Finding.loc.Loc.file = "t.chi") findings

(* ---- EXO001 / EXO002: shred races ---- *)

(* stride 4 but width 8: iterations i and i+1 overlap on C *)
let test_exo001_overlapping_stride () =
  let fs =
    lint_chi
      {|
int A[64];
int C[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(C, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 2
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
  in
  assert_fired "EXO001" fs;
  check_bool "EXO001 is an error" true
    (List.exists
       (fun f -> f.Finding.rule = "EXO001" && f.Finding.severity = Finding.Error)
       fs)

(* stride 8, width 8: disjoint slices, no race *)
let vadd_like stride =
  Printf.sprintf
    {|
int A[256];
int C[256];
void main() {
  int i;
  chi_desc(A, 0, 256, 1);
  chi_desc(C, 1, 256, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i)
  for (i = 0; i < 32; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, %d
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
    stride

let test_exo001_disjoint_slices_clean () =
  let fs = lint_chi (vadd_like 3) in
  assert_quiet "EXO001" fs;
  assert_quiet "EXO002" fs

(* single-element writes are disjoint, but an 8-wide read of the same
   surface sees neighbouring iterations' elements: read/write race *)
let test_exo002_read_write_overlap () =
  let fs =
    lint_chi
      {|
int C[64];
void main() {
  int i;
  chi_desc(C, 2, 64, 1);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    mov.1.dw   vr1 = %p0
    ld.8.dw    [vr2..vr9] = (C, vr1, 0)
    st.1.dw    (C, vr1, 0) = vr2
    end
  }
}
|}
  in
  assert_fired "EXO002" fs;
  assert_quiet "EXO001" fs (* the writes themselves stay disjoint *)

(* a single iteration cannot race with itself *)
let test_exo002_single_iteration_clean () =
  let fs =
    lint_chi
      {|
int C[64];
void main() {
  int i;
  chi_desc(C, 2, 64, 1);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 1; i = i + 1) __asm {
    mov.1.dw   vr1 = %p0
    ld.8.dw    [vr2..vr9] = (C, vr1, 0)
    st.1.dw    (C, vr1, 0) = vr2
    end
  }
}
|}
  in
  assert_quiet "EXO002" fs

(* ---- EXO003: host racing a master_nowait team ---- *)

let nowait_src ~wait_first =
  Printf.sprintf
    {|
int A[64];
int C[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(C, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i) master_nowait
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, 3
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
  %s
  print_int(C[1]);
}
|}
    (if wait_first then "chi_wait();" else "C[0] = 5;")

let test_exo003_touch_before_wait () =
  let fs = lint_chi (nowait_src ~wait_first:false) in
  assert_fired "EXO003" fs

let test_exo003_wait_then_touch_clean () =
  let fs = lint_chi (nowait_src ~wait_first:true) in
  assert_quiet "EXO003" fs

(* ---- EXO004: store through an Input descriptor ---- *)

let mode_src mode =
  Printf.sprintf
    {|
int A[64];
void main() {
  int i;
  chi_desc(A, %d, 64, 1);
  #pragma omp parallel target(X3000) shared(A) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, 3
    mov.8.dw   [vr2..vr9] = 0
    st.8.dw    (A, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
    mode

let test_exo004_write_input_surface () =
  assert_fired "EXO004" (lint_chi (mode_src 0))

let test_exo004_write_output_surface_clean () =
  let fs = lint_chi (mode_src 1) in
  assert_quiet "EXO004" fs

(* ---- EXO005: out-of-extent accesses ---- *)

let extent_src ~elems =
  Printf.sprintf
    {|
int C[64];
void main() {
  int i;
  chi_desc(C, 1, %d, 1);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, 3
    mov.8.dw   [vr2..vr9] = 0
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
    elems

(* the last iteration stores elements 56..63; a 4x8 = 32-element extent
   is exceeded (the seeded out-of-extent surface store) *)
let test_exo005_store_past_extent () =
  let fs =
    lint_chi
      {|
int C[64];
void main() {
  int i;
  chi_desc(C, 1, 4, 8);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    mov.8.dw   [vr2..vr9] = 0
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
  in
  assert_fired "EXO005" fs;
  check_bool "EXO005 is an error" true
    (List.exists
       (fun f -> f.Finding.rule = "EXO005" && f.Finding.severity = Finding.Error)
       fs)

let test_exo005_exact_extent_clean () =
  assert_quiet "EXO005" (lint_chi (extent_src ~elems:64))

(* ---- EXO006 / EXO007: descriptor and clause hygiene ---- *)

let test_exo006_unbound_shared () =
  let fs =
    lint_chi
      {|
int A[64];
void main() {
  int i;
  #pragma omp parallel target(X3000) shared(A) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    end
  }
}
|}
  in
  assert_fired "EXO006" fs

let test_exo006_bound_shared_clean () =
  assert_quiet "EXO006" (lint_chi (vadd_like 3))

let test_exo007_loop_var_not_private () =
  let fs =
    lint_chi
      {|
int A[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  #pragma omp parallel target(X3000) shared(A)
  for (i = 0; i < 8; i = i + 1) __asm {
    end
  }
}
|}
  in
  assert_fired "EXO007" fs

let test_exo007_descriptor_not_shared () =
  let fs =
    lint_chi
      {|
int A[64];
int B[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(B, 0, 64, 1);
  #pragma omp parallel target(X3000) shared(A) private(i) descriptor(B)
  for (i = 0; i < 8; i = i + 1) __asm {
    end
  }
}
|}
  in
  assert_fired "EXO007" fs

let test_exo007_well_formed_clauses_clean () =
  assert_quiet "EXO007" (lint_chi (vadd_like 3))

(* ---- EXO008: reads before initialization ---- *)

let test_exo008_uninit_x3k_register () =
  let fs = lint_x3k "  add.1.dw vr2 = vr0, vr1\n  end\n" in
  assert_fired "EXO008" fs

let test_exo008_uninit_x3k_flag () =
  let fs = lint_x3k "  (f3) mov.1.dw vr0 = 1\n  end\n" in
  assert_fired "EXO008" fs

let test_exo008_initialized_x3k_clean () =
  let fs =
    lint_x3k "  mov.1.dw vr0 = %p0\n  add.1.dw vr1 = vr0, vr0\n  st.1.dw (S0, vr1, 0) = vr1\n  end\n"
  in
  assert_quiet "EXO008" fs

let test_exo008_uninit_via32 () =
  let fs = lint_via "  add eax, ebx\n  push eax\n  ret\n" in
  assert_fired "EXO008" fs

let test_exo008_via32_zeroing_idiom_clean () =
  (* xor r, r and pxor x, x define without reading *)
  let fs =
    lint_via
      "  xor eax, eax\n  pxor xmm0, xmm0\n  movdqu [OUT], xmm0\n  push eax\n  ret\n"
  in
  assert_quiet "EXO008" fs

(* ---- EXO009: dead stores ---- *)

let test_exo009_dead_x3k_store () =
  let fs = lint_x3k "  mov.1.dw vr0 = 1\n  mov.1.dw vr0 = 2\n  st.1.dw (S0, vr0, 0) = vr0\n  end\n" in
  assert_fired "EXO009" fs

(* regression: a predicated overwrite does not kill the plain def *)
let test_exo009_predicated_overwrite_clean () =
  let fs =
    lint_x3k
      "  mov.1.dw vr0 = %p0\n\
      \  cmp.gt.1.dw f1 = vr0, 3\n\
      \  mov.1.dw vr1 = 64\n\
      \  (f1) mov.1.dw vr1 = 256\n\
      \  st.1.dw (S0, vr0, 0) = vr1\n\
      \  end\n"
  in
  assert_quiet "EXO009" fs

let test_exo009_dead_via32_store () =
  let fs = lint_via "  mov.d eax, 1\n  mov.d eax, 2\n  push eax\n  ret\n" in
  assert_fired "EXO009" fs

(* ---- EXO010: unreachable code ---- *)

let test_exo010_code_after_end () =
  let fs = lint_x3k "L:\n  jmp L\n  mov.1.dw vr0 = 1\n  end\n" in
  assert_fired "EXO010" fs

let test_exo010_all_reachable_clean () =
  let fs = lint_x3k "  mov.1.dw vr0 = 1\n  st.1.dw (S0, vr0, 0) = vr0\n  end\n" in
  assert_quiet "EXO010" fs

let test_exo010_via32_code_after_ret () =
  let fs = lint_via "  ret\n  mov.d eax, 1\n  hlt\n" in
  assert_fired "EXO010" fs

(* ---- anchoring: section findings land on .chi source lines ---- *)

let test_section_finding_line_anchor () =
  let fs =
    lint_chi
      {|
int A[64];
int C[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(C, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    add.8.dw   [vr2..vr9] = [vr10..vr17], [vr10..vr17]
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
  in
  let f =
    match List.filter (fun f -> f.Finding.rule = "EXO008") (chi_rules fs) with
    | f :: _ -> f
    | [] -> Alcotest.fail "expected an EXO008 finding in t.chi"
  in
  check_int "anchored at the add line" 11 f.Finding.loc.Loc.line;
  check_bool "anchored in the .chi file" true (f.Finding.loc.Loc.file = "t.chi")

(* ---- the registry kernels stay clean ---- *)

let test_registry_kernels_clean () =
  List.iter
    (fun (k : Exochi_kernels.Kernel.t) ->
      let io =
        k.make_io ?frames:(Some 12)
          (Exochi_util.Prng.create 1L)
          Exochi_kernels.Kernel.Small
      in
      let xp = Exochi_isa.X3k_asm.assemble_exn ~name:k.abbrev (k.x3k_asm io) in
      let vp =
        match
          Exochi_isa.Via32_asm.assemble ~name:k.abbrev
            (k.via32_asm io ~lo:0 ~hi:io.Exochi_kernels.Kernel.units)
        with
        | Ok p -> p
        | Error e -> Alcotest.failf "%s: %s" k.abbrev (Loc.error_to_string e)
      in
      let fs = Exo_check.check_x3k xp @ Exo_check.check_via32 vp in
      check_int (k.abbrev ^ " findings") 0 (List.length fs))
    Exochi_kernels.Registry.all

(* ---- findings report: JSON round-trip ---- *)

let test_report_json_round_trip () =
  let fs = lint_chi (nowait_src ~wait_first:false) in
  let json =
    Exochi_obs.Tiny_json.to_string ~indent:2
      (Finding.report_json ~extra:[ ("file", Exochi_obs.Tiny_json.Str "t.chi") ] fs)
  in
  match Exochi_obs.Tiny_json.parse json with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok v ->
    let num field =
      match Option.bind (Exochi_obs.Tiny_json.member field v) Exochi_obs.Tiny_json.to_num with
      | Some n -> int_of_float n
      | None -> Alcotest.failf "missing %s" field
    in
    check_int "errors" (Finding.count Finding.Error fs) (num "errors");
    check_int "warnings" (Finding.count Finding.Warning fs) (num "warnings");
    (match Option.bind (Exochi_obs.Tiny_json.member "findings" v) Exochi_obs.Tiny_json.to_arr with
    | Some arr -> check_int "findings array" (List.length fs) (List.length arr)
    | None -> Alcotest.fail "missing findings array")

let test_rule_catalog_complete () =
  (* every rule a test fires is in the catalog, with a description *)
  List.iter
    (fun rule ->
      match Finding.rule_description rule with
      | Some d -> check_bool rule true (String.length d > 0)
      | None -> Alcotest.failf "missing catalog entry for %s" rule)
    [ "EXO001"; "EXO002"; "EXO003"; "EXO004"; "EXO005"; "EXO006"; "EXO007";
      "EXO008"; "EXO009"; "EXO010" ]

let () =
  Alcotest.run "analysis"
    [
      ( "races",
        [
          Alcotest.test_case "EXO001 overlapping stride" `Quick
            test_exo001_overlapping_stride;
          Alcotest.test_case "EXO001 disjoint clean" `Quick
            test_exo001_disjoint_slices_clean;
          Alcotest.test_case "EXO002 read/write overlap" `Quick
            test_exo002_read_write_overlap;
          Alcotest.test_case "EXO002 single iteration clean" `Quick
            test_exo002_single_iteration_clean;
          Alcotest.test_case "EXO003 touch before wait" `Quick
            test_exo003_touch_before_wait;
          Alcotest.test_case "EXO003 wait first clean" `Quick
            test_exo003_wait_then_touch_clean;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "EXO004 write input surface" `Quick
            test_exo004_write_input_surface;
          Alcotest.test_case "EXO004 write output clean" `Quick
            test_exo004_write_output_surface_clean;
          Alcotest.test_case "EXO005 store past extent" `Quick
            test_exo005_store_past_extent;
          Alcotest.test_case "EXO005 exact extent clean" `Quick
            test_exo005_exact_extent_clean;
          Alcotest.test_case "EXO006 unbound shared" `Quick
            test_exo006_unbound_shared;
          Alcotest.test_case "EXO006 bound shared clean" `Quick
            test_exo006_bound_shared_clean;
          Alcotest.test_case "EXO007 loop var not private" `Quick
            test_exo007_loop_var_not_private;
          Alcotest.test_case "EXO007 descriptor not shared" `Quick
            test_exo007_descriptor_not_shared;
          Alcotest.test_case "EXO007 well-formed clean" `Quick
            test_exo007_well_formed_clauses_clean;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "EXO008 uninit x3k register" `Quick
            test_exo008_uninit_x3k_register;
          Alcotest.test_case "EXO008 uninit x3k flag" `Quick
            test_exo008_uninit_x3k_flag;
          Alcotest.test_case "EXO008 initialized clean" `Quick
            test_exo008_initialized_x3k_clean;
          Alcotest.test_case "EXO008 uninit via32" `Quick
            test_exo008_uninit_via32;
          Alcotest.test_case "EXO008 zeroing idiom clean" `Quick
            test_exo008_via32_zeroing_idiom_clean;
          Alcotest.test_case "EXO009 dead x3k store" `Quick
            test_exo009_dead_x3k_store;
          Alcotest.test_case "EXO009 predicated overwrite clean" `Quick
            test_exo009_predicated_overwrite_clean;
          Alcotest.test_case "EXO009 dead via32 store" `Quick
            test_exo009_dead_via32_store;
          Alcotest.test_case "EXO010 code after jmp" `Quick
            test_exo010_code_after_end;
          Alcotest.test_case "EXO010 all reachable clean" `Quick
            test_exo010_all_reachable_clean;
          Alcotest.test_case "EXO010 code after ret" `Quick
            test_exo010_via32_code_after_ret;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "section line anchor" `Quick
            test_section_finding_line_anchor;
          Alcotest.test_case "registry kernels clean" `Quick
            test_registry_kernels_clean;
          Alcotest.test_case "report json round-trip" `Quick
            test_report_json_round_trip;
          Alcotest.test_case "rule catalog complete" `Quick
            test_rule_catalog_complete;
        ] );
    ]
