(* Exo-check analyzer tests: every rule id with at least one flagged and
   one clean program, plus the JSON findings format and the .chi line
   anchoring of section findings. *)

open Exochi_analysis
module Loc = Exochi_isa.Loc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lint_chi src =
  match Exo_check.check_source ~name:"t.chi" src with
  | Ok findings -> findings
  | Error e -> Alcotest.failf "compile failed: %s" (Loc.error_to_string e)

let lint_x3k src =
  Exo_check.check_x3k (Exochi_isa.X3k_asm.assemble_exn ~name:"t" src)

let lint_via src =
  match Exochi_isa.Via32_asm.assemble ~name:"t" src with
  | Ok p -> Exo_check.check_via32 p
  | Error e -> Alcotest.failf "assembly failed: %s" (Loc.error_to_string e)

let fired rule findings =
  List.exists (fun f -> f.Finding.rule = rule) findings

let assert_fired rule findings =
  if not (fired rule findings) then
    Alcotest.failf "expected %s, got: [%s]" rule
      (String.concat "; " (List.map Finding.to_string findings))

let assert_quiet rule findings =
  List.iter
    (fun f ->
      if f.Finding.rule = rule then
        Alcotest.failf "unexpected %s: %s" rule (Finding.to_string f))
    findings

(* only the section/AST rules: the compiled VIA32 main section may carry
   its own EXO008..EXO010 findings, which these tests don't constrain *)
let chi_rules findings =
  List.filter (fun f -> f.Finding.loc.Loc.file = "t.chi") findings

(* ---- EXO001 / EXO002: shred races ---- *)

(* stride 4 but width 8: iterations i and i+1 overlap on C *)
let test_exo001_overlapping_stride () =
  let fs =
    lint_chi
      {|
int A[64];
int C[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(C, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 2
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
  in
  assert_fired "EXO001" fs;
  check_bool "EXO001 is an error" true
    (List.exists
       (fun f -> f.Finding.rule = "EXO001" && f.Finding.severity = Finding.Error)
       fs)

(* stride 8, width 8: disjoint slices, no race *)
let vadd_like stride =
  Printf.sprintf
    {|
int A[256];
int C[256];
void main() {
  int i;
  chi_desc(A, 0, 256, 1);
  chi_desc(C, 1, 256, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i)
  for (i = 0; i < 32; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, %d
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
    stride

let test_exo001_disjoint_slices_clean () =
  let fs = lint_chi (vadd_like 3) in
  assert_quiet "EXO001" fs;
  assert_quiet "EXO002" fs

(* single-element writes are disjoint, but an 8-wide read of the same
   surface sees neighbouring iterations' elements: read/write race *)
let test_exo002_read_write_overlap () =
  let fs =
    lint_chi
      {|
int C[64];
void main() {
  int i;
  chi_desc(C, 2, 64, 1);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    mov.1.dw   vr1 = %p0
    ld.8.dw    [vr2..vr9] = (C, vr1, 0)
    st.1.dw    (C, vr1, 0) = vr2
    end
  }
}
|}
  in
  assert_fired "EXO002" fs;
  assert_quiet "EXO001" fs (* the writes themselves stay disjoint *)

(* a single iteration cannot race with itself *)
let test_exo002_single_iteration_clean () =
  let fs =
    lint_chi
      {|
int C[64];
void main() {
  int i;
  chi_desc(C, 2, 64, 1);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 1; i = i + 1) __asm {
    mov.1.dw   vr1 = %p0
    ld.8.dw    [vr2..vr9] = (C, vr1, 0)
    st.1.dw    (C, vr1, 0) = vr2
    end
  }
}
|}
  in
  assert_quiet "EXO002" fs

(* ---- EXO003: host racing a master_nowait team ---- *)

let nowait_src ~wait_first =
  Printf.sprintf
    {|
int A[64];
int C[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(C, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i) master_nowait
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, 3
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
  %s
  print_int(C[1]);
}
|}
    (if wait_first then "chi_wait();" else "C[0] = 5;")

let test_exo003_touch_before_wait () =
  let fs = lint_chi (nowait_src ~wait_first:false) in
  assert_fired "EXO003" fs

let test_exo003_wait_then_touch_clean () =
  let fs = lint_chi (nowait_src ~wait_first:true) in
  assert_quiet "EXO003" fs

(* ---- EXO004: store through an Input descriptor ---- *)

let mode_src mode =
  Printf.sprintf
    {|
int A[64];
void main() {
  int i;
  chi_desc(A, %d, 64, 1);
  #pragma omp parallel target(X3000) shared(A) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, 3
    mov.8.dw   [vr2..vr9] = 0
    st.8.dw    (A, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
    mode

let test_exo004_write_input_surface () =
  assert_fired "EXO004" (lint_chi (mode_src 0))

let test_exo004_write_output_surface_clean () =
  let fs = lint_chi (mode_src 1) in
  assert_quiet "EXO004" fs

(* ---- EXO005: out-of-extent accesses ---- *)

let extent_src ~elems =
  Printf.sprintf
    {|
int C[64];
void main() {
  int i;
  chi_desc(C, 1, %d, 1);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %%p0, 3
    mov.8.dw   [vr2..vr9] = 0
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
    elems

(* the last iteration stores elements 56..63; a 4x8 = 32-element extent
   is exceeded (the seeded out-of-extent surface store) *)
let test_exo005_store_past_extent () =
  let fs =
    lint_chi
      {|
int C[64];
void main() {
  int i;
  chi_desc(C, 1, 4, 8);
  #pragma omp parallel target(X3000) shared(C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    mov.8.dw   [vr2..vr9] = 0
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
  in
  assert_fired "EXO005" fs;
  check_bool "EXO005 is an error" true
    (List.exists
       (fun f -> f.Finding.rule = "EXO005" && f.Finding.severity = Finding.Error)
       fs)

let test_exo005_exact_extent_clean () =
  assert_quiet "EXO005" (lint_chi (extent_src ~elems:64))

(* ---- EXO006 / EXO007: descriptor and clause hygiene ---- *)

let test_exo006_unbound_shared () =
  let fs =
    lint_chi
      {|
int A[64];
void main() {
  int i;
  #pragma omp parallel target(X3000) shared(A) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    end
  }
}
|}
  in
  assert_fired "EXO006" fs

let test_exo006_bound_shared_clean () =
  assert_quiet "EXO006" (lint_chi (vadd_like 3))

let test_exo007_loop_var_not_private () =
  let fs =
    lint_chi
      {|
int A[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  #pragma omp parallel target(X3000) shared(A)
  for (i = 0; i < 8; i = i + 1) __asm {
    end
  }
}
|}
  in
  assert_fired "EXO007" fs

let test_exo007_descriptor_not_shared () =
  let fs =
    lint_chi
      {|
int A[64];
int B[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(B, 0, 64, 1);
  #pragma omp parallel target(X3000) shared(A) private(i) descriptor(B)
  for (i = 0; i < 8; i = i + 1) __asm {
    end
  }
}
|}
  in
  assert_fired "EXO007" fs

let test_exo007_well_formed_clauses_clean () =
  assert_quiet "EXO007" (lint_chi (vadd_like 3))

(* ---- EXO008: reads before initialization ---- *)

let test_exo008_uninit_x3k_register () =
  let fs = lint_x3k "  add.1.dw vr2 = vr0, vr1\n  end\n" in
  assert_fired "EXO008" fs

let test_exo008_uninit_x3k_flag () =
  let fs = lint_x3k "  (f3) mov.1.dw vr0 = 1\n  end\n" in
  assert_fired "EXO008" fs

let test_exo008_initialized_x3k_clean () =
  let fs =
    lint_x3k "  mov.1.dw vr0 = %p0\n  add.1.dw vr1 = vr0, vr0\n  st.1.dw (S0, vr1, 0) = vr1\n  end\n"
  in
  assert_quiet "EXO008" fs

let test_exo008_uninit_via32 () =
  let fs = lint_via "  add eax, ebx\n  push eax\n  ret\n" in
  assert_fired "EXO008" fs

let test_exo008_via32_zeroing_idiom_clean () =
  (* xor r, r and pxor x, x define without reading *)
  let fs =
    lint_via
      "  xor eax, eax\n  pxor xmm0, xmm0\n  movdqu [OUT], xmm0\n  push eax\n  ret\n"
  in
  assert_quiet "EXO008" fs

(* ---- EXO009: dead stores ---- *)

let test_exo009_dead_x3k_store () =
  let fs = lint_x3k "  mov.1.dw vr0 = 1\n  mov.1.dw vr0 = 2\n  st.1.dw (S0, vr0, 0) = vr0\n  end\n" in
  assert_fired "EXO009" fs

(* regression: a predicated overwrite does not kill the plain def *)
let test_exo009_predicated_overwrite_clean () =
  let fs =
    lint_x3k
      "  mov.1.dw vr0 = %p0\n\
      \  cmp.gt.1.dw f1 = vr0, 3\n\
      \  mov.1.dw vr1 = 64\n\
      \  (f1) mov.1.dw vr1 = 256\n\
      \  st.1.dw (S0, vr0, 0) = vr1\n\
      \  end\n"
  in
  assert_quiet "EXO009" fs

let test_exo009_dead_via32_store () =
  let fs = lint_via "  mov.d eax, 1\n  mov.d eax, 2\n  push eax\n  ret\n" in
  assert_fired "EXO009" fs

(* ---- EXO010: unreachable code ---- *)

let test_exo010_code_after_end () =
  let fs = lint_x3k "L:\n  jmp L\n  mov.1.dw vr0 = 1\n  end\n" in
  assert_fired "EXO010" fs

let test_exo010_all_reachable_clean () =
  let fs = lint_x3k "  mov.1.dw vr0 = 1\n  st.1.dw (S0, vr0, 0) = vr0\n  end\n" in
  assert_quiet "EXO010" fs

let test_exo010_via32_code_after_ret () =
  let fs = lint_via "  ret\n  mov.d eax, 1\n  hlt\n" in
  assert_fired "EXO010" fs

(* ---- anchoring: section findings land on .chi source lines ---- *)

let test_section_finding_line_anchor () =
  let fs =
    lint_chi
      {|
int A[64];
int C[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(C, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, C) private(i)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    add.8.dw   [vr2..vr9] = [vr10..vr17], [vr10..vr17]
    st.8.dw    (C, vr1, 0) = [vr2..vr9]
    end
  }
}
|}
  in
  let f =
    match List.filter (fun f -> f.Finding.rule = "EXO008") (chi_rules fs) with
    | f :: _ -> f
    | [] -> Alcotest.fail "expected an EXO008 finding in t.chi"
  in
  check_int "anchored at the add line" 11 f.Finding.loc.Loc.line;
  check_bool "anchored in the .chi file" true (f.Finding.loc.Loc.file = "t.chi")

(* ---- the registry kernels stay clean ---- *)

let test_registry_kernels_clean () =
  List.iter
    (fun (k : Exochi_kernels.Kernel.t) ->
      let io =
        k.make_io ?frames:(Some 12)
          (Exochi_util.Prng.create 1L)
          Exochi_kernels.Kernel.Small
      in
      let xp = Exochi_isa.X3k_asm.assemble_exn ~name:k.abbrev (k.x3k_asm io) in
      let vp =
        match
          Exochi_isa.Via32_asm.assemble ~name:k.abbrev
            (k.via32_asm io ~lo:0 ~hi:io.Exochi_kernels.Kernel.units)
        with
        | Ok p -> p
        | Error e -> Alcotest.failf "%s: %s" k.abbrev (Loc.error_to_string e)
      in
      let fs = Exo_check.check_x3k xp @ Exo_check.check_via32 vp in
      check_int (k.abbrev ^ " findings") 0 (List.length fs))
    Exochi_kernels.Registry.all

(* ---- findings report: JSON round-trip ---- *)

let test_report_json_round_trip () =
  let fs = lint_chi (nowait_src ~wait_first:false) in
  let json =
    Exochi_obs.Tiny_json.to_string ~indent:2
      (Finding.report_json ~extra:[ ("file", Exochi_obs.Tiny_json.Str "t.chi") ] fs)
  in
  match Exochi_obs.Tiny_json.parse json with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok v ->
    let num field =
      match Option.bind (Exochi_obs.Tiny_json.member field v) Exochi_obs.Tiny_json.to_num with
      | Some n -> int_of_float n
      | None -> Alcotest.failf "missing %s" field
    in
    check_int "errors" (Finding.count Finding.Error fs) (num "errors");
    check_int "warnings" (Finding.count Finding.Warning fs) (num "warnings");
    (match Option.bind (Exochi_obs.Tiny_json.member "findings" v) Exochi_obs.Tiny_json.to_arr with
    | Some arr -> check_int "findings array" (List.length fs) (List.length arr)
    | None -> Alcotest.fail "missing findings array")

let test_rule_catalog_complete () =
  (* every rule a test fires is in the catalog, with a description *)
  List.iter
    (fun rule ->
      match Finding.rule_description rule with
      | Some d -> check_bool rule true (String.length d > 0)
      | None -> Alcotest.failf "missing catalog entry for %s" rule)
    [ "EXO001"; "EXO002"; "EXO003"; "EXO004"; "EXO005"; "EXO006"; "EXO007";
      "EXO008"; "EXO009"; "EXO010"; "EXO011"; "EXO012"; "EXO013"; "EXO014";
      "EXO015" ]

(* ---- findings report: SARIF export ---- *)

let test_sarif_export () =
  let fs = lint_chi (nowait_src ~wait_first:false) in
  let json = Exochi_obs.Tiny_json.to_string ~indent:2 (Finding.to_sarif fs) in
  match Exochi_obs.Tiny_json.parse json with
  | Error e -> Alcotest.failf "sarif does not parse: %s" e
  | Ok v ->
    let member = Exochi_obs.Tiny_json.member in
    (match Option.bind (member "version" v) Exochi_obs.Tiny_json.to_str with
    | Some "2.1.0" -> ()
    | Some other -> Alcotest.failf "wrong sarif version %s" other
    | None -> Alcotest.fail "missing sarif version");
    (match Option.bind (member "runs" v) Exochi_obs.Tiny_json.to_arr with
    | Some [ run ] ->
      (match Option.bind (member "results" run) Exochi_obs.Tiny_json.to_arr with
      | Some rs -> check_int "sarif results" (List.length fs) (List.length rs)
      | None -> Alcotest.fail "missing results array")
    | _ -> Alcotest.fail "expected exactly one run")

(* ---- EXO011..EXO015: Exo-bound loop/WCET rules ---- *)

let x3k_bound ?env src =
  Bound.analyze_x3k ?env (Exochi_isa.X3k_asm.assemble_exn ~name:"t" src)

let via_bound src =
  match Exochi_isa.Via32_asm.assemble ~name:"t" src with
  | Ok p -> Bound.analyze_via32 p
  | Error e -> Alcotest.failf "assembly failed: %s" (Loc.error_to_string e)

(* sub steps the induction variable away from the < 16 exit bound *)
let test_exo011_unbounded_spin () =
  let fs =
    lint_x3k
      "  mov.1.dw vr1 = 0\n\
       SPIN:\n\
      \  sub.1.dw vr1 = vr1, 1\n\
      \  cmp.lt.1.dw f0 = vr1, 16\n\
      \  br.any f0, SPIN\n\
      \  end\n"
  in
  assert_fired "EXO011" fs;
  check_bool "EXO011 is an error" true
    (List.exists
       (fun f -> f.Finding.rule = "EXO011" && f.Finding.severity = Finding.Error)
       fs)

let counted_loop =
  "  mov.1.dw vr1 = 0\n\
   L:\n\
  \  add.1.dw vr1 = vr1, 1\n\
  \  cmp.lt.1.dw f0 = vr1, 16\n\
  \  br.any f0, L\n\
  \  end\n"

let test_exo011_counted_loop_clean () =
  let fs = lint_x3k counted_loop in
  assert_quiet "EXO011" fs;
  assert_quiet "EXO012" fs;
  assert_quiet "EXO013" fs;
  assert_quiet "EXO015" fs

let test_bound_constant_loop_verdict () =
  let b = x3k_bound counted_loop in
  check_int "one loop" 1 (List.length b.Bound.loops);
  match b.Bound.verdict with
  | Bound.Cycles c -> check_bool "positive bound" true (c > 0)
  | v -> Alcotest.failf "expected Cycles, got %s" (Bound.verdict_to_string v)

(* the trip count depends on %p1: Unknown standalone, proven under an env *)
let symbolic_loop =
  "  mov.1.dw vr1 = 0\n\
   L:\n\
  \  add.1.dw vr1 = vr1, 1\n\
  \  cmp.lt.1.dw f0 = vr1, %p1\n\
  \  br.any f0, L\n\
  \  end\n"

let test_bound_symbolic_trip_env () =
  (match (x3k_bound symbolic_loop).Bound.verdict with
  | Bound.Unknown _ -> ()
  | v ->
    Alcotest.failf "expected Unknown without env, got %s"
      (Bound.verdict_to_string v));
  let env i = if i = 1 then Some (1, 16) else None in
  match (x3k_bound ~env symbolic_loop).Bound.verdict with
  | Bound.Cycles c -> check_bool "bounded under env" true (c > 0)
  | v ->
    Alcotest.failf "expected Cycles under env, got %s"
      (Bound.verdict_to_string v)

(* the MID/TOP cycle has two entries: no natural-loop trip bound *)
let irreducible_x3k =
  "  mov.1.dw vr1 = %p0\n\
  \  cmp.lt.1.dw f0 = vr1, 4\n\
  \  br.any f0, MID\n\
   TOP:\n\
  \  add.1.dw vr1 = vr1, 1\n\
   MID:\n\
  \  sub.1.dw vr1 = vr1, 1\n\
  \  cmp.gt.1.dw f1 = vr1, 0\n\
  \  br.any f1, TOP\n\
  \  end\n"

let test_exo012_irreducible () =
  let fs = lint_x3k irreducible_x3k in
  assert_fired "EXO012" fs;
  match (x3k_bound irreducible_x3k).Bound.verdict with
  | Bound.Unknown _ -> ()
  | v -> Alcotest.failf "expected Unknown, got %s" (Bound.verdict_to_string v)

let nested_x3k =
  "  mov.1.dw vr1 = 0\n\
   OUTER:\n\
  \  mov.1.dw vr2 = 0\n\
   INNER:\n\
  \  add.1.dw vr2 = vr2, 1\n\
  \  cmp.lt.1.dw f1 = vr2, 8\n\
  \  br.any f1, INNER\n\
  \  add.1.dw vr1 = vr1, 1\n\
  \  cmp.lt.1.dw f0 = vr1, 8\n\
  \  br.any f0, OUTER\n\
  \  end\n"

let test_exo012_nested_reducible_clean () =
  let fs = lint_x3k nested_x3k in
  assert_quiet "EXO012" fs;
  let b = x3k_bound nested_x3k in
  check_int "two loops" 2 (List.length b.Bound.loops);
  match b.Bound.verdict with
  | Bound.Cycles c -> check_bool "nested bound" true (c > 0)
  | v -> Alcotest.failf "expected Cycles, got %s" (Bound.verdict_to_string v)

(* 1e15 header executions overflow the analyzer's cycle cap *)
let test_exo013_overflow () =
  let fs =
    lint_x3k
      "  mov.1.dw vr1 = 0\n\
       OUTER:\n\
      \  mov.1.dw vr2 = 0\n\
       MIDDLE:\n\
      \  mov.1.dw vr3 = 0\n\
       INNER:\n\
      \  add.1.dw vr3 = vr3, 1\n\
      \  cmp.lt.1.dw f2 = vr3, 100000\n\
      \  br.any f2, INNER\n\
      \  add.1.dw vr2 = vr2, 1\n\
      \  cmp.lt.1.dw f1 = vr2, 100000\n\
      \  br.any f1, MIDDLE\n\
      \  add.1.dw vr1 = vr1, 1\n\
      \  cmp.lt.1.dw f0 = vr1, 100000\n\
      \  br.any f0, OUTER\n\
      \  end\n"
  in
  assert_fired "EXO013" fs

let deadline_src us =
  Printf.sprintf
    {|
void main() {
  int i;
  #pragma omp parallel target(X3000) private(i) deadline_us(%d)
  for (i = 0; i < 64; i = i + 1) __asm {
    mov.1.dw    vr1 = 0
  BUSY:
    add.1.dw    vr1 = vr1, 1
    cmp.lt.1.dw f0 = vr1, 4000
    br.any      f0, BUSY
    end
  }
}
|}
    us

let test_exo014_infeasible_deadline () =
  let fs = lint_chi (deadline_src 1) in
  assert_fired "EXO014" fs;
  check_bool "EXO014 is an error" true
    (List.exists
       (fun f -> f.Finding.rule = "EXO014" && f.Finding.severity = Finding.Error)
       fs)

let test_exo014_generous_deadline_clean () =
  assert_quiet "EXO014" (lint_chi (deadline_src 100000))

(* +2 then -1 in the same iteration: mixed directions, no progress proof *)
let test_exo015_nonmonotone () =
  let fs =
    lint_x3k
      "  mov.1.dw vr1 = 0\n\
       W:\n\
      \  add.1.dw vr1 = vr1, 2\n\
      \  sub.1.dw vr1 = vr1, 1\n\
      \  cmp.lt.1.dw f0 = vr1, 32\n\
      \  br.any f0, W\n\
      \  end\n"
  in
  assert_fired "EXO015" fs

(* a register-amount step is opaque, not non-monotone: stays quiet *)
let test_exo015_opaque_step_quiet () =
  let fs =
    lint_x3k
      "  mov.1.dw vr1 = 0\n\
      \  mov.1.dw vr2 = %p0\n\
       L:\n\
      \  add.1.dw vr1 = vr1, vr2\n\
      \  cmp.lt.1.dw f0 = vr1, 32\n\
      \  br.any f0, L\n\
      \  end\n"
  in
  assert_quiet "EXO015" fs;
  assert_quiet "EXO011" fs

(* ---- CFG corner cases: classify, never crash ---- *)

let test_cfg_self_loop_x3k () =
  let b = x3k_bound "L:\n  jmp L\n  end\n" in
  check_int "one loop" 1 (List.length b.Bound.loops);
  check_bool "EXO011 on a jmp self-loop" true (fired "EXO011" b.Bound.findings);
  match b.Bound.verdict with
  | Bound.Unbounded -> ()
  | v -> Alcotest.failf "expected Unbounded, got %s" (Bound.verdict_to_string v)

(* the loop header is the program entry itself *)
let test_cfg_back_edge_to_entry_x3k () =
  let b =
    x3k_bound
      "TOP:\n\
      \  add.1.dw vr1 = vr1, 1\n\
      \  cmp.lt.1.dw f0 = vr1, 8\n\
      \  br.any f0, TOP\n\
      \  end\n"
  in
  check_int "one loop" 1 (List.length b.Bound.loops);
  assert_quiet "EXO012" b.Bound.findings

(* two back edges into one header merge into a single natural loop *)
let test_cfg_shared_header_x3k () =
  let b =
    x3k_bound
      "  mov.1.dw vr1 = 0\n\
       H:\n\
      \  add.1.dw vr1 = vr1, 1\n\
      \  cmp.lt.1.dw f0 = vr1, 4\n\
      \  br.any f0, H\n\
      \  cmp.lt.1.dw f1 = vr1, 8\n\
      \  br.any f1, H\n\
      \  end\n"
  in
  check_int "merged into one loop" 1 (List.length b.Bound.loops);
  assert_quiet "EXO012" b.Bound.findings

(* a loop in unreachable code gets no verdict contribution and no EXO011 *)
let test_cfg_unreachable_loop_x3k () =
  let b = x3k_bound "  mov.1.dw vr0 = 1\n  end\nDEAD:\n  jmp DEAD\n" in
  check_int "no reachable loops" 0 (List.length b.Bound.loops);
  assert_quiet "EXO011" b.Bound.findings;
  match b.Bound.verdict with
  | Bound.Cycles _ -> ()
  | v -> Alcotest.failf "expected Cycles, got %s" (Bound.verdict_to_string v)

let test_cfg_self_loop_via32 () =
  let b = via_bound "SPIN:\n  jmp SPIN\n" in
  check_int "one loop" 1 (List.length b.Bound.loops);
  check_bool "EXO011 on a jmp self-loop" true (fired "EXO011" b.Bound.findings)

let test_cfg_counted_loop_via32 () =
  let b =
    via_bound
      "  mov.d esi, 0\n\
       L:\n\
      \  cmp esi, 8\n\
      \  jge DONE\n\
      \  add esi, 1\n\
      \  jmp L\n\
       DONE:\n\
      \  ret\n"
  in
  check_int "one loop" 1 (List.length b.Bound.loops);
  assert_quiet "EXO011" b.Bound.findings;
  assert_quiet "EXO012" b.Bound.findings;
  assert_quiet "EXO015" b.Bound.findings;
  (* no VIA32 cycle cost model: never Cycles, even for a bounded loop *)
  match b.Bound.verdict with
  | Bound.Cycles c -> Alcotest.failf "unexpected via32 Cycles %d" c
  | _ -> ()

(* two entries into the TOP/MID cycle: irreducible, classified not crashed *)
let test_cfg_irreducible_via32 () =
  let b =
    via_bound
      "  mov.d esi, 4\n\
      \  cmp esi, 4\n\
      \  jge MID\n\
       TOP:\n\
      \  add esi, 1\n\
       MID:\n\
      \  sub esi, 1\n\
      \  cmp esi, 0\n\
      \  jge TOP\n\
      \  ret\n"
  in
  check_bool "EXO012 fired" true (fired "EXO012" b.Bound.findings)

let test_cfg_unreachable_loop_via32 () =
  let b = via_bound "  ret\nDEAD:\n  jmp DEAD\n" in
  check_int "no reachable loops" 0 (List.length b.Bound.loops);
  assert_quiet "EXO011" b.Bound.findings

(* ---- soundness: measured busy cycles never exceed the static bound ---- *)

let frames_for (k : Exochi_kernels.Kernel.t) =
  match k.abbrev with "FMD" -> Some 6 | _ -> Some 3

let test_registry_bounds_sound () =
  let cycle_ps =
    Exochi_util.Timebase.ps_per_cycle
      (Exochi_util.Timebase.clock
         ~mhz:Exochi_accel.Gpu.default_config.Exochi_accel.Gpu.clock_mhz)
  in
  List.iter
    (fun (k : Exochi_kernels.Kernel.t) ->
      let io =
        k.make_io ?frames:(frames_for k)
          (Exochi_util.Prng.create 42L)
          Exochi_kernels.Kernel.Small
      in
      let xp = Exochi_isa.X3k_asm.assemble_exn ~name:k.abbrev (k.x3k_asm io) in
      let units = io.Exochi_kernels.Kernel.units in
      check_bool (k.abbrev ^ " has units") true (units > 0);
      (* per-parameter min/max over every unit's launch vector — the same
         interval env the serve admission gate derives *)
      let nparams = Array.length (k.unit_params io 0) in
      let lo = Array.copy (k.unit_params io 0) in
      let hi = Array.copy (k.unit_params io 0) in
      for u = 1 to units - 1 do
        let ps = k.unit_params io u in
        Array.iteri
          (fun i v ->
            if v < lo.(i) then lo.(i) <- v;
            if v > hi.(i) then hi.(i) <- v)
          ps
      done;
      let env i =
        if i >= 0 && i < nparams then Some (lo.(i), hi.(i)) else None
      in
      let b = Bound.analyze_x3k ~env xp in
      match b.Bound.verdict with
      | Bound.Cycles c ->
        let r =
          Exochi_kernels.Harness.run ?frames:(frames_for k)
            ~split:Exochi_kernels.Harness.All_gpu k Exochi_kernels.Kernel.Small
        in
        check_bool (k.abbrev ^ " correct") true r.Exochi_kernels.Harness.correct;
        let static_ps = r.Exochi_kernels.Harness.shreds * c * cycle_ps in
        if r.Exochi_kernels.Harness.gpu_busy_ps > static_ps then
          Alcotest.failf
            "%s: measured busy %d ps exceeds static bound %d ps (%d shreds x \
             %d cycles/shred)"
            k.abbrev r.Exochi_kernels.Harness.gpu_busy_ps static_ps
            r.Exochi_kernels.Harness.shreds c
      | v ->
        Alcotest.failf "%s: expected a proven cycle bound, got %s" k.abbrev
          (Bound.verdict_to_string v))
    Exochi_kernels.Registry.all

let () =
  Alcotest.run "analysis"
    [
      ( "races",
        [
          Alcotest.test_case "EXO001 overlapping stride" `Quick
            test_exo001_overlapping_stride;
          Alcotest.test_case "EXO001 disjoint clean" `Quick
            test_exo001_disjoint_slices_clean;
          Alcotest.test_case "EXO002 read/write overlap" `Quick
            test_exo002_read_write_overlap;
          Alcotest.test_case "EXO002 single iteration clean" `Quick
            test_exo002_single_iteration_clean;
          Alcotest.test_case "EXO003 touch before wait" `Quick
            test_exo003_touch_before_wait;
          Alcotest.test_case "EXO003 wait first clean" `Quick
            test_exo003_wait_then_touch_clean;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "EXO004 write input surface" `Quick
            test_exo004_write_input_surface;
          Alcotest.test_case "EXO004 write output clean" `Quick
            test_exo004_write_output_surface_clean;
          Alcotest.test_case "EXO005 store past extent" `Quick
            test_exo005_store_past_extent;
          Alcotest.test_case "EXO005 exact extent clean" `Quick
            test_exo005_exact_extent_clean;
          Alcotest.test_case "EXO006 unbound shared" `Quick
            test_exo006_unbound_shared;
          Alcotest.test_case "EXO006 bound shared clean" `Quick
            test_exo006_bound_shared_clean;
          Alcotest.test_case "EXO007 loop var not private" `Quick
            test_exo007_loop_var_not_private;
          Alcotest.test_case "EXO007 descriptor not shared" `Quick
            test_exo007_descriptor_not_shared;
          Alcotest.test_case "EXO007 well-formed clean" `Quick
            test_exo007_well_formed_clauses_clean;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "EXO008 uninit x3k register" `Quick
            test_exo008_uninit_x3k_register;
          Alcotest.test_case "EXO008 uninit x3k flag" `Quick
            test_exo008_uninit_x3k_flag;
          Alcotest.test_case "EXO008 initialized clean" `Quick
            test_exo008_initialized_x3k_clean;
          Alcotest.test_case "EXO008 uninit via32" `Quick
            test_exo008_uninit_via32;
          Alcotest.test_case "EXO008 zeroing idiom clean" `Quick
            test_exo008_via32_zeroing_idiom_clean;
          Alcotest.test_case "EXO009 dead x3k store" `Quick
            test_exo009_dead_x3k_store;
          Alcotest.test_case "EXO009 predicated overwrite clean" `Quick
            test_exo009_predicated_overwrite_clean;
          Alcotest.test_case "EXO009 dead via32 store" `Quick
            test_exo009_dead_via32_store;
          Alcotest.test_case "EXO010 code after jmp" `Quick
            test_exo010_code_after_end;
          Alcotest.test_case "EXO010 all reachable clean" `Quick
            test_exo010_all_reachable_clean;
          Alcotest.test_case "EXO010 code after ret" `Quick
            test_exo010_via32_code_after_ret;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "section line anchor" `Quick
            test_section_finding_line_anchor;
          Alcotest.test_case "registry kernels clean" `Quick
            test_registry_kernels_clean;
          Alcotest.test_case "report json round-trip" `Quick
            test_report_json_round_trip;
          Alcotest.test_case "rule catalog complete" `Quick
            test_rule_catalog_complete;
          Alcotest.test_case "sarif export" `Quick test_sarif_export;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "EXO011 unbounded spin" `Quick
            test_exo011_unbounded_spin;
          Alcotest.test_case "EXO011 counted loop clean" `Quick
            test_exo011_counted_loop_clean;
          Alcotest.test_case "constant loop verdict" `Quick
            test_bound_constant_loop_verdict;
          Alcotest.test_case "symbolic trip under env" `Quick
            test_bound_symbolic_trip_env;
          Alcotest.test_case "EXO012 irreducible" `Quick test_exo012_irreducible;
          Alcotest.test_case "EXO012 nested reducible clean" `Quick
            test_exo012_nested_reducible_clean;
          Alcotest.test_case "EXO013 overflow" `Quick test_exo013_overflow;
          Alcotest.test_case "EXO014 infeasible deadline" `Quick
            test_exo014_infeasible_deadline;
          Alcotest.test_case "EXO014 generous deadline clean" `Quick
            test_exo014_generous_deadline_clean;
          Alcotest.test_case "EXO015 non-monotone" `Quick test_exo015_nonmonotone;
          Alcotest.test_case "EXO015 opaque step quiet" `Quick
            test_exo015_opaque_step_quiet;
          Alcotest.test_case "cfg self-loop x3k" `Quick test_cfg_self_loop_x3k;
          Alcotest.test_case "cfg back edge to entry x3k" `Quick
            test_cfg_back_edge_to_entry_x3k;
          Alcotest.test_case "cfg shared header x3k" `Quick
            test_cfg_shared_header_x3k;
          Alcotest.test_case "cfg unreachable loop x3k" `Quick
            test_cfg_unreachable_loop_x3k;
          Alcotest.test_case "cfg self-loop via32" `Quick
            test_cfg_self_loop_via32;
          Alcotest.test_case "cfg counted loop via32" `Quick
            test_cfg_counted_loop_via32;
          Alcotest.test_case "cfg irreducible via32" `Quick
            test_cfg_irreducible_via32;
          Alcotest.test_case "cfg unreachable loop via32" `Quick
            test_cfg_unreachable_loop_via32;
          Alcotest.test_case "registry bounds sound" `Quick
            test_registry_bounds_sound;
        ] );
    ]
