(* CHI-lite compiler tests: language semantics, pragma lowering, fat-binary
   contents, and end-to-end execution on the simulated platform. *)

open Exochi_core
module Loc = Exochi_isa.Loc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile_ok src =
  match Chilite_compile.compile ~name:"t" src with
  | Ok c -> c
  | Error e -> Alcotest.failf "unexpected compile error: %s" (Loc.error_to_string e)

let compile_err src =
  match Chilite_compile.compile ~name:"t" src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> e

let run_output ?(setup = fun _ -> ()) src =
  let compiled = compile_ok src in
  let platform = Exo_platform.create () in
  let prog = Chilite_run.load ~platform compiled in
  setup prog;
  Chilite_run.run prog;
  (prog, Chilite_run.output prog)

(* ---- pure-CPU language semantics ---- *)

let test_arith_and_print () =
  let _, out = run_output {|
void main() {
  int x = 6;
  int y;
  y = x * 7 - 2;
  print_int(y);
  print_int(y / 4);
  print_int(y % 4);
  print_int(-x);
}
|} in
  check_bool "output" true (out = [ 40; 10; 0; -6 ])

let test_control_flow () =
  let _, out = run_output {|
void main() {
  int i;
  int sum = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) {
      sum = sum + i;
    } else {
      sum = sum - 1;
    }
  }
  print_int(sum);
  while (sum > 3) {
    sum = sum >> 1;
  }
  print_int(sum);
}
|} in
  check_bool "output" true (out = [ 15; 3 ])

let test_functions_and_recursion () =
  let _, out = run_output {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int mix(int a, int b, int c) {
  return a * 100 + b * 10 + c;
}
void main() {
  print_int(fib(10));
  print_int(mix(1, 2, 3));
}
|} in
  check_bool "fib & arg order" true (out = [ 55; 123 ])

let test_globals_and_arrays () =
  let _, out = run_output {|
int bias = 5;
int tab[16];
void main() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    tab[i] = i * i + bias;
  }
  print_int(tab[0]);
  print_int(tab[15]);
}
|} in
  check_bool "array contents" true (out = [ 5; 230 ])

let test_logical_ops_short_circuit () =
  let _, out = run_output {|
int calls = 0;
int bump() {
  calls = calls + 1;
  return 1;
}
void main() {
  int a = 0;
  if (a && bump()) { print_int(111); }
  if (a || bump()) { print_int(222); }
  print_int(calls);
}
|} in
  check_bool "short circuit: && skipped bump, || called it once" true
    (out = [ 222; 1 ])

(* ---- error reporting ---- *)

let contains e affix = Astring.String.is_infix ~affix e.Loc.msg

let test_undeclared_variable () =
  check_bool "msg" true
    (contains (compile_err "void main() { x = 1; }") "undeclared")

let test_missing_main () =
  check_bool "msg" true (contains (compile_err "int g;") "no main")

let test_bad_asm_reported () =
  let e =
    compile_err
      {|
int A[8];
void main() {
  int i;
  chi_desc(A, 0, 8, 1);
  #pragma omp parallel target(X3000) shared(A) private(i)
  for (i = 0; i < 1; i = i + 1) __asm {
    frobnicate.8.dw vr0 = vr1
    end
  }
}
|}
  in
  check_bool "assembler error surfaces" true (contains e "inline assembly")

let test_asm_surface_must_be_shared () =
  let e =
    compile_err
      {|
int A[8];
int B[8];
void main() {
  int i;
  #pragma omp parallel target(X3000) shared(A) private(i)
  for (i = 0; i < 1; i = i + 1) __asm {
    mov.1.dw vr1 = 0
    st.1.dw (B, vr1, 0) = vr1
    end
  }
}
|}
  in
  check_bool "B not shared" true (contains e "not in shared")

let test_unknown_target_rejected () =
  let e =
    compile_err
      {|
int A[8];
void main() {
  int i;
  #pragma omp parallel target(PPU) shared(A) private(i)
  for (i = 0; i < 1; i = i + 1) __asm {
    end
  }
}
|}
  in
  check_bool "unknown ISA" true (contains e "unknown target")

(* error paths must carry an exact source location and a usable message *)

let test_unknown_target_loc_and_msg () =
  let e =
    compile_err
      "int A[8];\n\
       void main() {\n\
      \  int i;\n\
      \  #pragma omp parallel target(PPU) shared(A) private(i)\n\
      \  for (i = 0; i < 1; i = i + 1) __asm {\n\
      \    end\n\
      \  }\n\
       }\n"
  in
  check_bool "msg names the ISA" true (contains e "unknown target");
  check_bool "msg carries the bad name" true (contains e "PPU");
  check_int "line" 4 e.Loc.loc.Loc.line

let test_descriptor_undeclared_var_loc_and_msg () =
  let e =
    compile_err
      "int A[8];\n\
       void main() {\n\
      \  int i;\n\
      \  #pragma omp parallel target(X3000) shared(A) private(i) \
       descriptor(Z)\n\
      \  for (i = 0; i < 1; i = i + 1) __asm {\n\
      \    end\n\
      \  }\n\
       }\n"
  in
  check_bool "msg names the variable" true (contains e "Z");
  check_bool "msg explains" true (contains e "no such global");
  check_int "line" 4 e.Loc.loc.Loc.line

let test_descriptor_scalar_loc_and_msg () =
  let e =
    compile_err
      "int A[8];\n\
       int s;\n\
       void main() {\n\
      \  int i;\n\
      \  #pragma omp parallel target(X3000) shared(A) private(i) \
       descriptor(s)\n\
      \  for (i = 0; i < 1; i = i + 1) __asm {\n\
      \    end\n\
      \  }\n\
       }\n"
  in
  check_bool "msg names the variable" true (contains e "s");
  check_bool "msg explains" true (contains e "scalar");
  check_int "line" 5 e.Loc.loc.Loc.line

let test_duplicate_clause_loc_and_msg () =
  let e =
    compile_err
      "int A[8];\n\
       int B[8];\n\
       void main() {\n\
      \  int i;\n\
      \  #pragma omp parallel target(X3000) shared(A) shared(B) private(i)\n\
      \  for (i = 0; i < 1; i = i + 1) __asm {\n\
      \    end\n\
      \  }\n\
       }\n"
  in
  check_bool "msg" true (contains e "duplicate shared(...) clause");
  check_int "line" 5 e.Loc.loc.Loc.line

let test_taskq_pragma_guided () =
  let e =
    compile_err
      {|
void main() {
  #pragma intel omp taskq target(X3000)
  { }
}
|}
  in
  check_bool "taskq pointer" true (contains e "taskq")

(* ---- parallel regions end to end ---- *)

let vadd_src =
  {|
int A[256];
int B[256];
int C[256];
void main() {
  int i;
  chi_desc(A, 0, 256, 1);
  chi_desc(B, 0, 256, 1);
  chi_desc(C, 1, 256, 1);
  #pragma omp parallel target(X3000) shared(A, B, C) private(i)
  for (i = 0; i < 32; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    ld.8.dw    [vr10..vr17] = (B, vr1, 0)
    add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw    (C, vr1, 0) = [vr18..vr25]
    end
  }
  print_int(C[0] + C[255]);
}
|}

let test_parallel_vadd () =
  let prog, out =
    run_output vadd_src ~setup:(fun prog ->
        for i = 0 to 255 do
          Chilite_run.write_global prog "A" ~index:i (Int32.of_int i);
          Chilite_run.write_global prog "B" ~index:i (Int32.of_int (2 * i))
        done)
  in
  for i = 0 to 255 do
    Alcotest.(check int32)
      (Printf.sprintf "C[%d]" i)
      (Int32.of_int (3 * i))
      (Chilite_run.read_global prog "C" ~index:i)
  done;
  check_bool "printed sum" true (out = [ 3 * 255 ])

let test_fatbin_sections_emitted () =
  let compiled = compile_ok vadd_src in
  let names = Chi_fatbin.section_names compiled.Chilite_compile.fatbin in
  check_bool "main + sec0" true
    (names = [ (Chi_fatbin.Via32, "main"); (Chi_fatbin.X3k, "sec0") ]);
  check_int "one parallel section" 1
    (List.length compiled.Chilite_compile.sections)

let test_master_nowait_in_source () =
  let prog, _ =
    run_output
      {|
int A[64];
int B[64];
void main() {
  int i;
  chi_desc(A, 0, 64, 1);
  chi_desc(B, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A, B) private(i) master_nowait
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    add.8.dw   [vr2..vr9] = [vr2..vr9], 1
    st.8.dw    (B, vr1, 0) = [vr2..vr9]
    end
  }
  chi_wait();
}
|}
      ~setup:(fun prog ->
        for i = 0 to 63 do
          Chilite_run.write_global prog "A" ~index:i (Int32.of_int (10 * i))
        done)
  in
  for i = 0 to 63 do
    Alcotest.(check int32)
      (Printf.sprintf "B[%d]" i)
      (Int32.of_int ((10 * i) + 1))
      (Chilite_run.read_global prog "B" ~index:i)
  done

let test_firstprivate_reaches_shreds () =
  let prog, out =
    run_output
      {|
int A[64];
int scale = 7;
void main() {
  int i;
  int bias;
  bias = 100;
  chi_desc(A, 1, 64, 1);
  #pragma omp parallel target(X3000) shared(A) private(i) firstprivate(scale, bias)
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw  vr1 = %p0, 3
    bcast.8.dw vr2 = %p1
    bcast.8.dw vr3 = %p2
    mul.8.dw  vr4 = vr2, %p0
    add.8.dw  vr4 = vr4, vr3
    st.8.dw   (A, vr1, 0) = vr4
    end
  }
  print_int(A[0]);
  print_int(A[56]);
}
|}
  in
  check_bool "values arrived in %p1/%p2" true (out = [ 100; 149 ]);
  Alcotest.(check int32) "shred 3" 121l (Chilite_run.read_global prog "A" ~index:24)

let test_generated_via32_assembles () =
  match Chilite_compile.compile_to_via32_text ~name:"t" vadd_src with
  | Error e -> Alcotest.fail (Loc.error_to_string e)
  | Ok text -> (
    match Exochi_isa.Via32_asm.assemble ~name:"main" text with
    | Ok p ->
      check_bool "has instructions" true
        (Array.length p.Exochi_isa.Via32_ast.instrs > 20)
    | Error e -> Alcotest.fail (Loc.error_to_string e))

(* ---- the debugger over a CHI-lite program ---- *)

let test_debugger_cpu_breakpoint_and_step () =
  let compiled =
    compile_ok {|
void main() {
  int x = 1;
  x = x + 1;
  x = x + 1;
  print_int(x);
}
|}
  in
  let platform = Exo_platform.create () in
  let prog = Chilite_run.load ~platform compiled in
  ignore prog;
  let dbg = Chi_debug.create platform in
  Chi_debug.set_breakpoint dbg ~pc:3;
  check_bool "breakpoint recorded" true (Chi_debug.breakpoints dbg = [ 3 ])

let test_debugger_exo_inspection () =
  (* park a shred in an infinite loop, inspect its register, then let it go *)
  let platform = Exo_platform.create () in
  let aspace = Exo_platform.aspace platform in
  let base =
    Exochi_memory.Address_space.alloc aspace ~name:"O" ~bytes:4096 ~align:64
  in
  let d =
    Chi_descriptor.alloc platform ~name:"O" ~base ~width:16 ~height:1 ~bpp:4
      ~mode:Chi_descriptor.Output ()
  in
  let prog =
    Exochi_isa.X3k_asm.assemble_exn ~name:"t"
      {|
  mov.1.dw vr5 = 1234
LOOP:
  ld.1.dw vr1 = (O, vr0, 0)
  cmp.eq.1.dw f0 = vr1, 0
  br.any f0, LOOP
  end
|}
  in
  let gpu = Exo_platform.gpu platform in
  Exochi_accel.Gpu.bind gpu ~prog ~surfaces:[| d.Chi_descriptor.surface |];
  Exochi_accel.Gpu.enqueue gpu
    [ { Exochi_accel.Gpu.shred_id = 7; entry = 0; params = [||] } ];
  let dbg = Chi_debug.create platform in
  (match Chi_debug.run_gpu_until dbg ~pc:2 with
  | Chi_debug.Exo_hit { shred_id; _ } -> check_int "shred id" 7 shred_id
  | Chi_debug.Exo_quiescent -> Alcotest.fail "expected to stop in the loop");
  check_bool "register visible" true
    (Chi_debug.exo_reg dbg ~shred_id:7 ~reg:5 ~lane:0 = Some 1234);
  check_bool "source line mapping" true (Chi_debug.x3k_line prog ~pc:0 = 2);
  (* release the spin loop and drain *)
  Exochi_memory.Address_space.write_u32 aspace base 1l;
  match Chi_debug.run_gpu_until dbg ~pc:999 with
  | Chi_debug.Exo_quiescent -> ()
  | _ -> Alcotest.fail "expected quiescence"

(* ---- property: random expressions agree with an Int32 reference ---- *)

type rexpr =
  | RInt of int32
  | RBin of string * rexpr * rexpr
  | RNeg of rexpr
  | RNot of rexpr

let rec rexpr_to_src = function
  | RInt v ->
    if Int32.compare v 0l < 0 then Printf.sprintf "(0 - %ld)" (Int32.neg v)
    else Int32.to_string v
  | RBin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (rexpr_to_src a) op (rexpr_to_src b)
  | RNeg e -> Printf.sprintf "(-%s)" (rexpr_to_src e)
  | RNot e -> Printf.sprintf "(!%s)" (rexpr_to_src e)

let rec rexpr_eval = function
  | RInt v -> v
  | RNeg e -> Int32.neg (rexpr_eval e)
  | RNot e -> if rexpr_eval e = 0l then 1l else 0l
  | RBin (op, a, b) -> (
    let va = rexpr_eval a in
    match op with
    | "&&" -> if va = 0l then 0l else if rexpr_eval b <> 0l then 1l else 0l
    | "||" -> if va <> 0l then 1l else if rexpr_eval b <> 0l then 1l else 0l
    | _ -> (
      let vb = rexpr_eval b in
      let cmp c = if c then 1l else 0l in
      match op with
      | "+" -> Int32.add va vb
      | "-" -> Int32.sub va vb
      | "*" -> Int32.mul va vb
      | "/" -> if vb = 0l then 0l else Int32.div va vb
      | "%" -> if vb = 0l then 0l else Int32.rem va vb
      | "&" -> Int32.logand va vb
      | "|" -> Int32.logor va vb
      | "^" -> Int32.logxor va vb
      | "<<" -> Int32.shift_left va (Int32.to_int vb land 31)
      | ">>" -> Int32.shift_right va (Int32.to_int vb land 31)
      | "<" -> cmp (Int32.compare va vb < 0)
      | "<=" -> cmp (Int32.compare va vb <= 0)
      | ">" -> cmp (Int32.compare va vb > 0)
      | ">=" -> cmp (Int32.compare va vb >= 0)
      | "==" -> cmp (va = vb)
      | "!=" -> cmp (va <> vb)
      | _ -> assert false))

let rexpr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map (fun v -> RInt (Int32.of_int v)) (int_range (-100) 100)
        else
          frequency
            [
              (1, map (fun v -> RInt (Int32.of_int v)) (int_range (-100) 100));
              (1, map (fun e -> RNeg e) (self (n / 2)));
              (1, map (fun e -> RNot e) (self (n / 2)));
              ( 6,
                map3
                  (fun op a b -> RBin (op, a, b))
                  (oneofl
                     [ "+"; "-"; "*"; "&"; "|"; "^"; "<"; "<="; ">"; ">=";
                       "=="; "!="; "&&"; "||" ])
                  (self (n / 2)) (self (n / 2)) );
              (* division/modulo with a guaranteed-nonzero literal rhs *)
              ( 1,
                map3
                  (fun op a d -> RBin (op, a, RInt (Int32.of_int (d + 1))))
                  (oneofl [ "/"; "%" ])
                  (self (n / 2)) (int_range 0 50) );
              (* shifts with small literal amounts *)
              ( 1,
                map3
                  (fun op a k -> RBin (op, a, RInt (Int32.of_int k)))
                  (oneofl [ "<<"; ">>" ])
                  (self (n / 2)) (int_range 0 15) );
            ]))

let prop_compiled_expressions_match_reference =
  QCheck.Test.make ~name:"compiled expressions match Int32 reference"
    ~count:60
    (QCheck.make ~print:rexpr_to_src rexpr_gen)
    (fun e ->
      let src = Printf.sprintf "void main() { print_int(%s); }" (rexpr_to_src e) in
      match Chilite_compile.compile ~name:"prop" src with
      | Error _ -> false
      | Ok compiled ->
        let platform = Exo_platform.create () in
        let prog = Chilite_run.load ~platform compiled in
        Chilite_run.run prog;
        (match Chilite_run.output prog with
        | [ got ] -> Int32.of_int got = rexpr_eval e
        | _ -> false))

let () =
  Alcotest.run "chilite"
    [
      ( "language",
        [
          QCheck_alcotest.to_alcotest prop_compiled_expressions_match_reference;
          Alcotest.test_case "arith/print" `Quick test_arith_and_print;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions_and_recursion;
          Alcotest.test_case "globals/arrays" `Quick test_globals_and_arrays;
          Alcotest.test_case "short circuit" `Quick test_logical_ops_short_circuit;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "undeclared var" `Quick test_undeclared_variable;
          Alcotest.test_case "missing main" `Quick test_missing_main;
          Alcotest.test_case "bad asm" `Quick test_bad_asm_reported;
          Alcotest.test_case "unshared surface" `Quick test_asm_surface_must_be_shared;
          Alcotest.test_case "unknown target" `Quick test_unknown_target_rejected;
          Alcotest.test_case "unknown target loc" `Quick
            test_unknown_target_loc_and_msg;
          Alcotest.test_case "descriptor undeclared loc" `Quick
            test_descriptor_undeclared_var_loc_and_msg;
          Alcotest.test_case "descriptor scalar loc" `Quick
            test_descriptor_scalar_loc_and_msg;
          Alcotest.test_case "duplicate clause loc" `Quick
            test_duplicate_clause_loc_and_msg;
          Alcotest.test_case "taskq guidance" `Quick test_taskq_pragma_guided;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "vector add" `Quick test_parallel_vadd;
          Alcotest.test_case "fatbin sections" `Quick test_fatbin_sections_emitted;
          Alcotest.test_case "master_nowait" `Quick test_master_nowait_in_source;
          Alcotest.test_case "firstprivate" `Quick test_firstprivate_reaches_shreds;
          Alcotest.test_case "via32 text assembles" `Quick test_generated_via32_assembles;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "cpu breakpoints" `Quick test_debugger_cpu_breakpoint_and_step;
          Alcotest.test_case "exo inspection" `Quick test_debugger_exo_inspection;
        ] );
    ]
