open Exochi_memory
open Exochi_core
open Exochi_isa
module Gpu = Exochi_accel.Gpu
module Machine = Exochi_cpu.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- platform / ATR integration ---- *)

let test_atr_end_to_end () =
  (* CPU writes data; GPU reads it back through ATR-translated mappings *)
  let p = Exo_platform.create () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"buf" ~bytes:4096 ~align:64 in
  Address_space.write_u32 aspace base 4242l;
  let s =
    Surface.make ~id:1 ~name:"B" ~base ~width:16 ~height:1 ~bpp:4
      ~tiling:Surface.Linear ~mode:Surface.In_out
  in
  Exo_platform.register_surface p s;
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      "  mov.1.dw vr1 = 0\n  ld.1.dw vr0 = (B, vr1, 0)\n  st.1.dw (B, vr1, 1) = vr0\n  end\n"
  in
  let gpu = Exo_platform.gpu p in
  Gpu.bind gpu ~prog ~surfaces:[| s |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  ignore (Gpu.run_to_quiescence gpu);
  Alcotest.(check int32) "GPU saw CPU data" 4242l
    (Address_space.read_u32 aspace (base + 4));
  check_bool "a full proxy happened" true (Exo_platform.atr_proxies p >= 1)

let test_atr_tiling_from_registry () =
  let p = Exo_platform.create () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"t" ~bytes:(1 lsl 16) ~align:4096 in
  let s =
    Surface.make ~id:7 ~name:"T" ~base ~width:256 ~height:32 ~bpp:1
      ~tiling:Surface.Tiled_y ~mode:Surface.Input
  in
  Exo_platform.register_surface p s;
  check_bool "tiling found" true
    (Exo_platform.tiling_for p ~vaddr:(base + 100) = Pte.X3k.Tiled_y);
  check_bool "default linear" true
    (Exo_platform.tiling_for p ~vaddr:4096 = Pte.X3k.Linear);
  Exo_platform.unregister_surface p s;
  check_bool "unregistered" true
    (Exo_platform.tiling_for p ~vaddr:(base + 100) = Pte.X3k.Linear)

let test_prewalk_fills_gtt () =
  let p = Exo_platform.create () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"b" ~bytes:(8 * 4096) ~align:4096 in
  Exo_platform.prewalk p ~vaddr:base ~len:(8 * 4096);
  (* now GPU touches all 8 pages with zero full proxies *)
  let s =
    Surface.make ~id:1 ~name:"B" ~base ~width:8192 ~height:1 ~bpp:4
      ~tiling:Surface.Linear ~mode:Surface.In_out
  in
  Exo_platform.register_surface p s;
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      {|
  mov.1.dw vr0 = 0
  mov.1.dw vr1 = 0
L:
  st.1.dw (B, vr0, 0) = vr1
  add.1.dw vr0 = vr0, 1024
  add.1.dw vr1 = vr1, 1
  cmp.lt.1.dw f0 = vr1, 8
  br.any f0, L
  end
|}
  in
  let gpu = Exo_platform.gpu p in
  Gpu.bind gpu ~prog ~surfaces:[| s |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  ignore (Gpu.run_to_quiescence gpu);
  check_int "no full proxies after prewalk" 0 (Exo_platform.atr_proxies p);
  check_bool "gtt hits instead" true (Exo_platform.gtt_hits p >= 8)

let test_invalidate_gtt () =
  let p = Exo_platform.create () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"b" ~bytes:4096 ~align:4096 in
  Exo_platform.prewalk p ~vaddr:base ~len:4096;
  Exo_platform.invalidate_gtt p;
  let s =
    Surface.make ~id:1 ~name:"B" ~base ~width:16 ~height:1 ~bpp:4
      ~tiling:Surface.Linear ~mode:Surface.In_out
  in
  Exo_platform.register_surface p s;
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      "  mov.1.dw vr1 = 0\n  st.1.dw (B, vr1, 0) = vr1\n  end\n"
  in
  let gpu = Exo_platform.gpu p in
  Gpu.bind gpu ~prog ~surfaces:[| s |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  ignore (Gpu.run_to_quiescence gpu);
  check_bool "proxy needed again" true (Exo_platform.atr_proxies p >= 1)

(* ---- descriptors (Table 1 APIs) ---- *)

let test_descriptor_alloc_free () =
  let p = Exo_platform.create () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"img" ~bytes:(1 lsl 16) ~align:64 in
  let d =
    Chi_descriptor.alloc p ~name:"IMG" ~base ~width:128 ~height:64
      ~mode:Chi_descriptor.Input ()
  in
  check_bool "registered" true
    (Exo_platform.tiling_for p ~vaddr:base = Pte.X3k.Linear);
  check_int "width" 128 d.Chi_descriptor.surface.Surface.width;
  Chi_descriptor.free p d

let test_descriptor_modify_tiling () =
  let p = Exo_platform.create () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"img" ~bytes:(1 lsl 18) ~align:4096 in
  let d =
    Chi_descriptor.alloc p ~name:"IMG" ~base ~width:512 ~height:64
      ~mode:Chi_descriptor.In_out ()
  in
  let d = Chi_descriptor.modify p d ~attrib:"tiling" ~value:2 in
  check_bool "now tiled-Y" true
    (d.Chi_descriptor.surface.Surface.tiling = Surface.Tiled_y);
  check_bool "registry updated" true
    (Exo_platform.tiling_for p ~vaddr:base = Pte.X3k.Tiled_y)

let test_features_api () =
  let f = Chi_descriptor.features () in
  Chi_descriptor.set_feature f ~id:"sampler_filter" ~value:1;
  Chi_descriptor.set_feature_pershred f ~shred:7 ~id:"sampler_filter" ~value:2;
  check_bool "global" true (Chi_descriptor.feature f ~shred:1 ~id:"sampler_filter" = Some 1);
  check_bool "per-shred override" true
    (Chi_descriptor.feature f ~shred:7 ~id:"sampler_filter" = Some 2);
  check_bool "unknown" true (Chi_descriptor.feature f ~shred:1 ~id:"nope" = None)

(* ---- fat binary ---- *)

let sample_x3k = "  mov.1.dw vr0 = 1\n  end\n"
let sample_via = "  mov.d eax, 1\n  hlt\n"

let test_fatbin_roundtrip () =
  let fb = Chi_fatbin.empty ~name:"app" in
  let fb = Chi_fatbin.add_x3k fb (X3k_asm.assemble_exn ~name:"kernel1" sample_x3k) in
  let fb = Chi_fatbin.add_via32 fb (Via32_asm.assemble_exn ~name:"main" sample_via) in
  let fb2 =
    match Chi_fatbin.decode (Chi_fatbin.encode fb) with
    | Ok fb -> fb
    | Error e -> Alcotest.fail e
  in
  check_bool "sections preserved" true
    (Chi_fatbin.section_names fb2
    = [ (Chi_fatbin.X3k, "kernel1"); (Chi_fatbin.Via32, "main") ]);
  (match Chi_fatbin.find_x3k fb2 "kernel1" with
  | Ok p -> check_int "decoded instrs" 2 (Array.length p.X3k_ast.instrs)
  | Error e -> Alcotest.fail e);
  match Chi_fatbin.find_via32 fb2 "main" with
  | Ok p -> check_int "decoded via" 2 (Array.length p.Via32_ast.instrs)
  | Error e -> Alcotest.fail e

let test_fatbin_duplicate_rejected () =
  let fb = Chi_fatbin.empty ~name:"app" in
  let fb = Chi_fatbin.add_x3k fb (X3k_asm.assemble_exn ~name:"k" sample_x3k) in
  check_bool "duplicate" true
    (try
       ignore (Chi_fatbin.add_x3k fb (X3k_asm.assemble_exn ~name:"k" sample_x3k));
       false
     with Invalid_argument _ -> true)

let test_fatbin_file_io () =
  let fb = Chi_fatbin.empty ~name:"app" in
  let fb = Chi_fatbin.add_x3k fb (X3k_asm.assemble_exn ~name:"k" sample_x3k) in
  let path = Filename.temp_file "exochi" ".fat" in
  Chi_fatbin.write_file fb ~path;
  (match Chi_fatbin.read_file ~path with
  | Ok fb2 -> check_bool "file roundtrip" true (Chi_fatbin.name fb2 = "app")
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_fatbin_missing_section () =
  let fb = Chi_fatbin.empty ~name:"app" in
  check_bool "missing" true (Result.is_error (Chi_fatbin.find_x3k fb "nope"))

(* ---- runtime: parallel across memory models ---- *)

let setup_parallel memmodel =
  let p = Exo_platform.create ~memmodel () in
  let rt = Chi_runtime.create ~platform:p () in
  let aspace = Exo_platform.aspace p in
  let alloc name =
    Address_space.alloc aspace ~name ~bytes:8192 ~align:64
  in
  let a = alloc "A" and b = alloc "B" and c = alloc "C" in
  for i = 0 to 255 do
    Address_space.write_u32 aspace (a + (4 * i)) (Int32.of_int i);
    Address_space.write_u32 aspace (b + (4 * i)) (Int32.of_int (7 * i))
  done;
  let desc name base mode =
    Chi_descriptor.alloc p ~name ~base ~width:256 ~height:1 ~bpp:4 ~mode ()
  in
  let da = desc "A" a Chi_descriptor.Input in
  let db = desc "B" b Chi_descriptor.Input in
  let dc = desc "C" c Chi_descriptor.Output in
  (p, rt, aspace, c, [ da; db; dc ])

let vadd_prog =
  X3k_asm.assemble_exn ~name:"vadd"
    {|
  shl.1.dw   vr1 = %p0, 3
  ld.8.dw    [vr2..vr9] = (A, vr1, 0)
  ld.8.dw    [vr10..vr17] = (B, vr1, 0)
  add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw    (C, vr1, 0) = [vr18..vr25]
  end
|}

let check_vadd aspace c =
  for i = 0 to 255 do
    Alcotest.(check int32)
      (Printf.sprintf "c[%d]" i)
      (Int32.of_int (8 * i))
      (Address_space.read_u32 aspace (c + (4 * i)))
  done

let test_parallel_cc () =
  let _, rt, aspace, c, descs = setup_parallel Memmodel.Cc_shared in
  ignore
    (Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:descs
       ~num_threads:32
       ~params:(fun i -> [| i |])
       ~master_nowait:false ());
  check_vadd aspace c

let test_parallel_noncc () =
  let p, rt, aspace, c, descs = setup_parallel Memmodel.Non_cc_shared in
  (* make the inputs dirty in the CPU caches, as a real producer would *)
  List.iter (fun d -> Chi_runtime.produce rt d) descs;
  ignore
    (Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:descs
       ~num_threads:32
       ~params:(fun i -> [| i |])
       ~master_nowait:false ());
  check_vadd aspace c;
  check_int "flush discipline respected" 0 (Exo_platform.protocol_violations p);
  check_bool "flushes actually happened" true (Chi_runtime.last_flush_bytes rt > 0)

let test_parallel_datacopy () =
  let _, rt, aspace, c, descs = setup_parallel Memmodel.Data_copy in
  ignore
    (Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:descs
       ~num_threads:32
       ~params:(fun i -> [| i |])
       ~master_nowait:false ());
  check_vadd aspace c;
  check_bool "copies happened" true (Chi_runtime.last_copy_bytes rt > 0)

let test_master_nowait_and_wait () =
  let p, rt, aspace, c, descs = setup_parallel Memmodel.Cc_shared in
  let team =
    Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:descs ~num_threads:32
      ~params:(fun i -> [| i |])
      ~master_nowait:true ()
  in
  (* master continues: charge some CPU work, then wait at the barrier *)
  Machine.add_time_ps (Exo_platform.cpu p) 50_000;
  Chi_runtime.wait rt team;
  Chi_runtime.wait rt team (* idempotent *);
  check_int "team size" 32 (Chi_runtime.team_size team);
  check_int "all completed" 32 (Chi_runtime.team_completed team);
  check_vadd aspace c

let test_missing_descriptor_rejected () =
  let _, rt, _, _, descs = setup_parallel Memmodel.Cc_shared in
  let two = List.filteri (fun i _ -> i < 2) descs in
  check_bool "missing C descriptor" true
    (try
       ignore
         (Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:two
            ~num_threads:1
            ~params:(fun _ -> [||])
            ~master_nowait:false ());
       false
     with Invalid_argument _ -> true)

let test_protocol_violation_detected () =
  (* non-CC, but dispatch bypassing the runtime's flush: read of dirty data *)
  let p =
    Exo_platform.create ~memmodel:Memmodel.Non_cc_shared ~protocol:Exo_platform.Strict ()
  in
  let rt = Chi_runtime.create ~platform:p () in
  let aspace = Exo_platform.aspace p in
  let a = Address_space.alloc aspace ~name:"A" ~bytes:4096 ~align:64 in
  let da =
    Chi_descriptor.alloc p ~name:"A" ~base:a ~width:256 ~height:1 ~bpp:4
      ~mode:Chi_descriptor.Input ()
  in
  Chi_runtime.produce rt da;
  (* raw dispatch straight to the GPU, skipping the CHI runtime's flush *)
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      "  mov.1.dw vr1 = 0\n  ld.1.dw vr0 = (A, vr1, 0)\n  end\n"
  in
  Exo_platform.prewalk p ~vaddr:a ~len:4096;
  let gpu = Exo_platform.gpu p in
  Gpu.bind gpu ~prog ~surfaces:[| da.Chi_descriptor.surface |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  check_bool "strict mode raises" true
    (try
       ignore (Gpu.run_to_quiescence gpu);
       false
     with Exo_platform.Protocol_violation _ -> true)

(* ---- taskq ---- *)

let test_taskq_dependency_order () =
  let p = Exo_platform.create () in
  let rt = Chi_runtime.create ~platform:p () in
  let aspace = Exo_platform.aspace p in
  let log_base = Address_space.alloc aspace ~name:"LOG" ~bytes:4096 ~align:64 in
  let dlog =
    Chi_descriptor.alloc p ~name:"LOG" ~base:log_base ~width:64 ~height:2
      ~bpp:4 ~mode:Chi_descriptor.In_out ()
  in
  (* each task appends its id at slot (LOG[0]++): element 0 is the cursor,
     protected by a hardware semaphore *)
  let prog =
    X3k_asm.assemble_exn ~name:"t"
      {|
  sem.acq 1
  mov.1.dw vr1 = 0
  ld.1.dw vr0 = (LOG, vr1, 0)
  add.1.dw vr2 = vr0, 1
  st.1.dw (LOG, vr1, 0) = vr2
  add.1.dw vr3 = vr0, 1
  st.1.dw (LOG, vr3, 0) = %p0
  fence
  sem.rel 1
  end
|}
  in
  (* diamond: 0 -> {1, 2} -> 3 *)
  let tasks =
    [|
      { Chi_runtime.tq_params = [| 100 |]; tq_deps = [] };
      { Chi_runtime.tq_params = [| 101 |]; tq_deps = [ 0 ] };
      { Chi_runtime.tq_params = [| 102 |]; tq_deps = [ 0 ] };
      { Chi_runtime.tq_params = [| 103 |]; tq_deps = [ 1; 2 ] };
    |]
  in
  Chi_runtime.taskq rt ~prog ~descriptors:[ dlog ] ~tasks;
  let order =
    List.init 4 (fun i ->
        Int32.to_int (Address_space.read_u32 aspace (log_base + (4 * (i + 1)))))
  in
  check_int "all ran" 4 (Int32.to_int (Address_space.read_u32 aspace log_base));
  check_int "root first" 100 (List.nth order 0);
  check_int "join last" 103 (List.nth order 3);
  check_bool "middle is 101/102" true
    (List.sort compare [ List.nth order 1; List.nth order 2 ] = [ 101; 102 ])

let test_taskq_cycle_detected () =
  let p = Exo_platform.create () in
  let rt = Chi_runtime.create ~platform:p () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"L" ~bytes:4096 ~align:64 in
  let d =
    Chi_descriptor.alloc p ~name:"L" ~base ~width:16 ~height:1 ~bpp:4
      ~mode:Chi_descriptor.In_out ()
  in
  let prog = X3k_asm.assemble_exn ~name:"t" "  nop\n  end\n" in
  let tasks =
    [|
      { Chi_runtime.tq_params = [||]; tq_deps = [ 1 ] };
      { Chi_runtime.tq_params = [||]; tq_deps = [ 0 ] };
    |]
  in
  check_bool "cycle raises" true
    (try
       Chi_runtime.taskq rt ~prog ~descriptors:[ d ] ~tasks;
       false
     with Chi_runtime.Dependency_cycle _ -> true)

let test_taskq_cycle_located_no_dispatch () =
  let p = Exo_platform.create () in
  let rt = Chi_runtime.create ~platform:p () in
  let aspace = Exo_platform.aspace p in
  let base = Address_space.alloc aspace ~name:"L" ~bytes:4096 ~align:64 in
  let d =
    Chi_descriptor.alloc p ~name:"L" ~base ~width:16 ~height:1 ~bpp:4
      ~mode:Chi_descriptor.In_out ()
  in
  let prog = X3k_asm.assemble_exn ~name:"t" "  nop\n  end\n" in
  (* 0 is a ready root; 2 <-> 3 is the seeded cycle; 4 hangs off it *)
  let tasks =
    [|
      { Chi_runtime.tq_params = [||]; tq_deps = [] };
      { Chi_runtime.tq_params = [||]; tq_deps = [ 0 ] };
      { Chi_runtime.tq_params = [||]; tq_deps = [ 3 ] };
      { Chi_runtime.tq_params = [||]; tq_deps = [ 2 ] };
      { Chi_runtime.tq_params = [||]; tq_deps = [ 3 ] };
    |]
  in
  let members =
    try
      Chi_runtime.taskq rt ~prog ~descriptors:[ d ] ~tasks;
      None
    with Chi_runtime.Dependency_cycle ms -> Some ms
  in
  check_bool "cycle members reported" true (members = Some [ 2; 3 ]);
  (* detection is up front: nothing was dispatched, not even root 0 *)
  check_int "no shred ran" 0
    (Exochi_accel.Gpu.shreds_completed (Exo_platform.gpu p))

(* ---- barrier timing sanity ---- *)

let test_barrier_advances_cpu () =
  let _, rt, _, _, descs = setup_parallel Memmodel.Cc_shared in
  let p = Chi_runtime.platform rt in
  let t0 = Machine.now_ps (Exo_platform.cpu p) in
  ignore
    (Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:descs
       ~num_threads:32
       ~params:(fun i -> [| i |])
       ~master_nowait:false ());
  check_bool "cpu time advanced past dispatch+work" true
    (Machine.now_ps (Exo_platform.cpu p) > t0)

let () =
  Alcotest.run "core"
    [
      ( "platform",
        [
          Alcotest.test_case "ATR end to end" `Quick test_atr_end_to_end;
          Alcotest.test_case "tiling registry" `Quick test_atr_tiling_from_registry;
          Alcotest.test_case "prewalk" `Quick test_prewalk_fills_gtt;
          Alcotest.test_case "invalidate gtt" `Quick test_invalidate_gtt;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "alloc/free" `Quick test_descriptor_alloc_free;
          Alcotest.test_case "modify tiling" `Quick test_descriptor_modify_tiling;
          Alcotest.test_case "features" `Quick test_features_api;
        ] );
      ( "fatbin",
        [
          Alcotest.test_case "roundtrip" `Quick test_fatbin_roundtrip;
          Alcotest.test_case "duplicate" `Quick test_fatbin_duplicate_rejected;
          Alcotest.test_case "file io" `Quick test_fatbin_file_io;
          Alcotest.test_case "missing section" `Quick test_fatbin_missing_section;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "parallel cc" `Quick test_parallel_cc;
          Alcotest.test_case "parallel non-cc" `Quick test_parallel_noncc;
          Alcotest.test_case "parallel data-copy" `Quick test_parallel_datacopy;
          Alcotest.test_case "master_nowait" `Quick test_master_nowait_and_wait;
          Alcotest.test_case "missing descriptor" `Quick test_missing_descriptor_rejected;
          Alcotest.test_case "protocol violation" `Quick test_protocol_violation_detected;
          Alcotest.test_case "barrier" `Quick test_barrier_advances_cpu;
        ] );
      ( "taskq",
        [
          Alcotest.test_case "dependency order" `Quick test_taskq_dependency_order;
          Alcotest.test_case "cycle detection" `Quick test_taskq_cycle_detected;
          Alcotest.test_case "cycle located, no dispatch" `Quick
            test_taskq_cycle_located_no_dispatch;
        ] );
    ]
