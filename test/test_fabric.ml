(* Exo-fabric: pluggable sequencer backends and multi-device sharded
   execution.

   The load-bearing invariants of the device-set refactor:
   - devices:1 through the device-set machinery is bit- and
     time-identical to the historical single-device path;
   - a sharded team produces byte-identical output surfaces at any
     device count (row-disjoint writes into the shared aspace);
   - per-device trace events partition the event set;
   - the serve placement layer is deterministic and conserves load;
   - a multi-device topology changes the serve-journal fingerprint, so
     recovery refuses a journal from a different device count. *)

open Exochi_memory
open Exochi_core
open Exochi_isa
module Gpu = Exochi_accel.Gpu
module Sb = Exochi_accel.Sequencer_backend
module Trace = Exochi_obs.Trace
module Fault_plan = Exochi_faults.Fault_plan
module Kernel = Exochi_kernels.Kernel
module Registry = Exochi_kernels.Registry
module Harness = Exochi_kernels.Harness
module Serve = Exochi_serving

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- a data-parallel workload: shred i sums rows 8i..8i+7 ---- *)

let vadd_prog =
  X3k_asm.assemble_exn ~name:"vadd"
    {|
  shl.1.dw   vr1 = %p0, 3
  ld.8.dw    [vr2..vr9] = (A, vr1, 0)
  ld.8.dw    [vr10..vr17] = (B, vr1, 0)
  add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw    (C, vr1, 0) = [vr18..vr25]
  end
|}

let elems = 2048 (* 256 shreds x 8 dwords *)

let run_vadd ?fault_plan ?trace ~devices () =
  let p = Exo_platform.create ?fault_plan ?trace ~devices () in
  let rt = Chi_runtime.create ~platform:p () in
  let aspace = Exo_platform.aspace p in
  let alloc name =
    Address_space.alloc aspace ~name ~bytes:(4 * elems) ~align:64
  in
  let a = alloc "A" and b = alloc "B" and c = alloc "C" in
  for i = 0 to elems - 1 do
    Address_space.write_u32 aspace (a + (4 * i)) (Int32.of_int i);
    Address_space.write_u32 aspace (b + (4 * i)) (Int32.of_int (7 * i))
  done;
  let desc name base mode =
    Chi_descriptor.alloc p ~name ~base ~width:elems ~height:1 ~bpp:4 ~mode ()
  in
  let descs =
    [
      desc "A" a Chi_descriptor.Input;
      desc "B" b Chi_descriptor.Input;
      desc "C" c Chi_descriptor.Output;
    ]
  in
  ignore
    (Chi_runtime.parallel rt ~prog:vadd_prog ~descriptors:descs
       ~num_threads:(elems / 8)
       ~params:(fun i -> [| i |])
       ~master_nowait:false ());
  let out = Array.init elems (fun i -> Address_space.read_u32 aspace (c + (4 * i))) in
  (rt, out)

let test_sharded_outputs_identical () =
  let _, o1 = run_vadd ~devices:1 () in
  let _, o2 = run_vadd ~devices:2 () in
  let _, o4 = run_vadd ~devices:4 () in
  for i = 0 to elems - 1 do
    Alcotest.(check int32)
      (Printf.sprintf "c[%d] expected" i)
      (Int32.of_int (8 * i))
      o1.(i)
  done;
  check_bool "2-device output byte-identical to 1-device" true (o1 = o2);
  check_bool "4-device output byte-identical to 1-device" true (o1 = o4)

let test_sharded_under_faults () =
  (* hangs and lost doorbells on both device streams: the supervised
     drain must still converge to the exact output, with zero fatality *)
  let plan () =
    Fault_plan.create ~seed:5L
      ~rates:{ (Fault_plan.uniform_rates 0.01) with Fault_plan.gtt_corrupt = 0.0 }
      ()
  in
  let _, o1 = run_vadd ~fault_plan:(plan ()) ~devices:1 () in
  let rt2, o2 = run_vadd ~fault_plan:(plan ()) ~devices:2 () in
  check_bool "faulted 2-device output still exact" true (o1 = o2);
  let r = Chi_runtime.recovery rt2 in
  check_int "no fatal faults" 0 r.Chi_runtime.fatal

(* ---- devices:1 is the historical single-device path, exactly ---- *)

let test_devices_one_identity () =
  let k = Option.get (Registry.find "SepiaTone") in
  let legacy = Harness.run ~frames:4 k Kernel.Small in
  let one = Harness.run ~frames:4 ~devices:1 k Kernel.Small in
  check_bool "correct" true (legacy.Harness.correct && one.Harness.correct);
  check_int "time_ps identical" legacy.Harness.time_ps one.Harness.time_ps;
  check_int "gpu_instrs identical" legacy.Harness.gpu_instrs
    one.Harness.gpu_instrs;
  check_int "shreds identical" legacy.Harness.shreds one.Harness.shreds;
  check_int "thread switches identical" legacy.Harness.thread_switches
    one.Harness.thread_switches;
  check_int "gpu busy identical" legacy.Harness.gpu_busy_ps
    one.Harness.gpu_busy_ps

let test_sharding_speeds_up () =
  let k = Option.get (Registry.find "SepiaTone") in
  let r1 = Harness.run ~frames:4 ~devices:1 k Kernel.Small in
  let r4 = Harness.run ~frames:4 ~devices:4 k Kernel.Small in
  check_bool "correct at 4 devices" true r4.Harness.correct;
  check_bool "4 devices beat 1" true
    (r4.Harness.time_ps < r1.Harness.time_ps)

(* ---- trace: device ids partition the event set ---- *)

let test_trace_partition () =
  let ndev = 4 in
  let sink = Trace.create () in
  let _, _ = run_vadd ~trace:sink ~devices:ndev () in
  let evs = Trace.events sink in
  check_bool "events recorded" true (evs <> []);
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.dev < 0 || e.Trace.dev >= ndev then
        Alcotest.failf "event device %d out of range [0,%d)" e.Trace.dev ndev)
    evs;
  let per_dev d =
    List.length (List.filter (fun (e : Trace.event) -> e.Trace.dev = d) evs)
  in
  let total = List.init ndev per_dev |> List.fold_left ( + ) 0 in
  check_int "per-device events partition the event set" (List.length evs)
    total;
  (* every device retired shreds, and the retired ids partition the
     team: each shred id ran on exactly one device (no faults, so no
     hedged duplicates) *)
  let retired_on d =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Shred_run { shred_id } when e.Trace.dev = d -> Some shred_id
        | _ -> None)
      evs
  in
  let all = List.concat (List.init ndev retired_on) in
  check_int "every shred retired exactly once" (elems / 8)
    (List.length (List.sort_uniq compare all));
  check_int "no duplicate retirements" (List.length all)
    (List.length (List.sort_uniq compare all));
  for d = 0 to ndev - 1 do
    check_bool
      (Printf.sprintf "device %d retired work" d)
      true
      (retired_on d <> [])
  done

(* ---- placement layer ---- *)

let test_placement_least_loaded () =
  let plc = Serve.Placement.create ~devices:3 ~policy:Serve.Placement.Least_loaded in
  check_int "first batch on device 0" 0
    (Serve.Placement.place plc ~kernel:"K" ~shreds:10);
  check_int "second on idle device 1" 1
    (Serve.Placement.place plc ~kernel:"K" ~shreds:10);
  check_int "third on idle device 2" 2
    (Serve.Placement.place plc ~kernel:"K" ~shreds:10);
  (* load released on 1 -> next batch goes there *)
  Serve.Placement.release plc ~dev:1 ~shreds:10;
  check_int "released device wins" 1
    (Serve.Placement.place plc ~kernel:"K" ~shreds:4);
  (* penalty biases away from the otherwise-least-loaded device 1
     (0 outstanding); the 10-vs-10 tie left breaks to the lowest index *)
  Serve.Placement.release plc ~dev:1 ~shreds:4;
  check_int "penalty overrides raw load" 0
    (Serve.Placement.place plc
       ~penalty:(fun d -> if d = 1 then 1000 else 0)
       ~kernel:"K" ~shreds:1);
  let sh0, b0 = Serve.Placement.load plc ~dev:0 in
  check_int "device 0 outstanding shreds" 11 sh0;
  check_int "device 0 outstanding batches" 2 b0

let test_placement_affinity () =
  let plc = Serve.Placement.create ~devices:2 ~policy:Serve.Placement.Affinity in
  let d = Serve.Placement.place plc ~kernel:"Sepia" ~shreds:8 in
  check_int "first placement settles the home" 0 d;
  Serve.Placement.release plc ~dev:d ~shreds:8;
  check_int "sticky while the home is idle" 0
    (Serve.Placement.place plc ~kernel:"Sepia" ~shreds:8);
  (* home busy and an idle peer available: overflow *)
  check_int "overflow to the idle peer" 1
    (Serve.Placement.place plc ~kernel:"Sepia" ~shreds:8);
  check_bool "policy name round-trips" true
    (Serve.Placement.policy_of_string
       (Serve.Placement.policy_name Serve.Placement.Affinity)
    = Some Serve.Placement.Affinity)

(* ---- multi-device serving ---- *)

let test_multi_device_serve () =
  let config = { Serve.Server.default_config with devices = 3 } in
  let server = Serve.Server.create ~config () in
  check_int "device set size" 3 (Serve.Server.devices server);
  let wl =
    Serve.Workload.create
      (Serve.Workload.default_spec ~seed:11L ~tenants:2 ~jobs:60
         (Serve.Workload.Closed { clients_per_tenant = 6; think_ps = 0 }))
  in
  let st = Serve.Server.run server wl in
  check_int "all jobs completed" st.Serve.Server_stats.submitted
    st.Serve.Server_stats.completed;
  let rows = Serve.Server.device_snapshot server in
  check_int "snapshot covers every device" 3 (Array.length rows);
  Array.iter
    (fun (_, shreds, batches, _, _) ->
      check_int "no stranded shreds" 0 shreds;
      check_int "no stranded batches" 0 batches)
    rows

(* ---- journal fingerprint refuses a different topology ---- *)

let test_journal_topology_fingerprint () =
  let base = [ "closed"; "200"; "2"; "42" ] in
  (* the CLI appends the devices/placement part only when devices > 1,
     so a 1-device journal keeps its historical fingerprint... *)
  let fp1 = Serve.Serve_journal.fingerprint base in
  let fp2 =
    Serve.Serve_journal.fingerprint (base @ [ "devices=2"; "placement=least-loaded" ])
  in
  let fp4 =
    Serve.Serve_journal.fingerprint (base @ [ "devices=4"; "placement=least-loaded" ])
  in
  check_bool "2-device topology changes the fingerprint" true (fp1 <> fp2);
  check_bool "4-device differs from 2-device" true (fp2 <> fp4);
  (* ...and a recovery under a different topology sees the mismatch *)
  let path = Filename.temp_file "exochi_fabric" ".journal" in
  let w = Serve.Serve_journal.start path ~fingerprint:fp2 in
  Serve.Serve_journal.close w;
  let rp = Serve.Serve_journal.load path in
  check_bool "journal stores the topology fingerprint" true
    (rp.Serve.Serve_journal.rp_fingerprint = Some fp2);
  check_bool "a 4-device recovery must refuse this journal" true
    (match rp.Serve.Serve_journal.rp_fingerprint with
    | Some fp -> fp <> fp4
    | None -> false);
  Sys.remove path

(* ---- backend interface surface ---- *)

let test_backend_table () =
  let p = Exo_platform.create ~devices:2 () in
  let backends = Exo_platform.all_backends p in
  check_int "two X3K devices plus the IA32 soft backend" 3
    (List.length backends);
  (match backends with
  | [ b0; b1; soft ] ->
    check_bool "device ids in order" true
      (b0.Sb.caps.Sb.bk_dev = 0 && b1.Sb.caps.Sb.bk_dev = 1);
    check_bool "X3K kinds" true
      (b0.Sb.caps.Sb.bk_kind = Sb.X3k && b1.Sb.caps.Sb.bk_kind = Sb.X3k);
    check_bool "soft backend is the IA32 master" true
      (soft.Sb.caps.Sb.bk_kind = Sb.Ia32_soft);
    check_int "soft backend has one slot" 1 (Sb.slots soft.Sb.caps);
    check_bool "describe names the kind" true
      (Astring.String.is_infix ~affix:"ia32-soft" (Sb.describe soft))
  | _ -> Alcotest.fail "unexpected backend list shape");
  (* the backend view delegates to the same device object *)
  let b0 = Exo_platform.backend p ~dev:0 in
  check_int "delegated queue length" (Gpu.queue_length (Exo_platform.gpu_dev p 0))
    (b0.Sb.queue_length ())

let () =
  Alcotest.run "fabric"
    [
      ( "sharding",
        [
          Alcotest.test_case "outputs byte-identical at 1/2/4 devices" `Quick
            test_sharded_outputs_identical;
          Alcotest.test_case "exact output under faults on both devices"
            `Quick test_sharded_under_faults;
          Alcotest.test_case "devices:1 is time-identical to legacy" `Quick
            test_devices_one_identity;
          Alcotest.test_case "4 devices beat 1 on a data-parallel kernel"
            `Quick test_sharding_speeds_up;
        ] );
      ( "observability",
        [
          Alcotest.test_case "per-device trace events partition the set"
            `Quick test_trace_partition;
        ] );
      ( "placement",
        [
          Alcotest.test_case "least-loaded is deterministic and conserves"
            `Quick test_placement_least_loaded;
          Alcotest.test_case "affinity sticks and overflows" `Quick
            test_placement_affinity;
        ] );
      ( "serving",
        [
          Alcotest.test_case "multi-device serve completes everything" `Quick
            test_multi_device_serve;
          Alcotest.test_case "journal refuses a different topology" `Quick
            test_journal_topology_fingerprint;
        ] );
      ( "backends",
        [
          Alcotest.test_case "device table and delegation" `Quick
            test_backend_table;
        ] );
    ]
