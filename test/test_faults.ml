(* Fault-injection and self-healing dispatch tests: the deterministic
   fault plan, the CHI runtime's recovery machinery (watchdog, bounded
   re-dispatch, quarantine, IA32 whole-shred fallback), the CEH proxy
   paths end to end, and the zero-overhead-when-disabled guarantee. *)

open Exochi_core
open Exochi_memory
module Fault_plan = Exochi_faults.Fault_plan
module Gpu = Exochi_accel.Gpu
module Kernel = Exochi_kernels.Kernel
module Harness = Exochi_kernels.Harness
module Registry = Exochi_kernels.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- fault plan ---- *)

let test_of_spec () =
  (match Fault_plan.of_spec "7:0.05" with
  | Ok plan ->
    check_bool "seed" true (Fault_plan.seed plan = 7L);
    check_bool "rate" true ((Fault_plan.rates plan).Fault_plan.hang = 0.05)
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  List.iter
    (fun bad ->
      match Fault_plan.of_spec bad with
      | Ok _ -> Alcotest.failf "spec %S should be rejected" bad
      | Error _ -> ())
    [ ""; "7"; "x:0.1"; "7:nope"; "7:1.5"; "7:-0.1" ]

let test_plan_determinism () =
  let mk () = Fault_plan.create ~seed:99L ~rates:(Fault_plan.uniform_rates 0.3) () in
  let a = mk () and b = mk () in
  for _ = 1 to 1000 do
    List.iter
      (fun c ->
        check_bool "same decision stream" true
          (Fault_plan.decide a c = Fault_plan.decide b c))
      Fault_plan.all_classes
  done;
  List.iter
    (fun c ->
      check_int
        (Fault_plan.class_name c ^ " counts agree")
        (Fault_plan.injected a c) (Fault_plan.injected b c))
    Fault_plan.all_classes;
  check_bool "roughly 30% hit rate" true
    (let t = Fault_plan.injected_total a in
     t > 1100 && t < 1900)

let test_zero_rate_never_fires () =
  let plan = Fault_plan.create ~seed:1L ~rates:Fault_plan.zero_rates () in
  for _ = 1 to 1000 do
    List.iter
      (fun c -> check_bool "no fault at rate 0" false (Fault_plan.decide plan c))
      Fault_plan.all_classes
  done;
  check_int "nothing injected" 0 (Fault_plan.injected_total plan)

let test_class_independence () =
  (* the per-class streams are independent: draining one class must not
     shift another class's decision sequence *)
  let a = Fault_plan.create ~seed:5L ~rates:(Fault_plan.uniform_rates 0.5) () in
  let b = Fault_plan.create ~seed:5L ~rates:(Fault_plan.uniform_rates 0.5) () in
  for _ = 1 to 500 do
    ignore (Fault_plan.decide a Fault_plan.Shred_hang)
  done;
  let sa = List.init 64 (fun _ -> Fault_plan.decide a Fault_plan.Lost_signal) in
  let sb = List.init 64 (fun _ -> Fault_plan.decide b Fault_plan.Lost_signal) in
  check_bool "lost-signal stream unshifted" true (sa = sb)

(* ---- harness-level recovery ---- *)

let kernel name = Option.get (Registry.find name)

let run_with ?rates ?gtt_enabled ?(seed = 42L) ?(rate = 0.01) name =
  let rates =
    match rates with Some r -> r | None -> Fault_plan.uniform_rates rate
  in
  let fault_plan = Fault_plan.create ~seed ~rates () in
  Harness.run ?gtt_enabled ~fault_plan (kernel name) Kernel.Small

let test_result_determinism () =
  let a = run_with "SepiaTone" and b = run_with "SepiaTone" in
  check_bool "identical results for identical fault seeds" true (a = b)

let test_zero_rate_identity () =
  List.iter
    (fun name ->
      let bare = Harness.run (kernel name) Kernel.Small in
      let zeroed = run_with ~rates:Fault_plan.zero_rates name in
      check_bool (name ^ ": zero-rate plan is free") true (bare = zeroed);
      check_int (name ^ ": no faults") 0 zeroed.Harness.faults_injected;
      check_int (name ^ ": no retries") 0 zeroed.Harness.retries)
    [ "SepiaTone"; "LinearFilter"; "Bicubic" ]

let test_one_percent_sweep () =
  List.iter
    (fun name ->
      let r = run_with ~rate:0.01 name in
      check_bool (name ^ ": bit-correct under 1% faults") true r.Harness.correct;
      check_bool (name ^ ": faults actually injected") true
        (r.Harness.faults_injected > 0);
      check_bool (name ^ ": recovery did work") true (r.Harness.retries > 0);
      check_int (name ^ ": nothing fatal") 0 r.Harness.fatal_faults)
    [ "SepiaTone"; "LinearFilter"; "Bicubic" ]

let test_quarantine_under_hang_storm () =
  let rates = { Fault_plan.zero_rates with Fault_plan.hang = 0.95 } in
  let r = run_with ~rates "SepiaTone" in
  check_bool "survives a 95% hang rate" true r.Harness.correct;
  check_bool "slots were quarantined" true (r.Harness.quarantined_seqs > 0);
  check_int "nothing fatal" 0 r.Harness.fatal_faults

let test_fallback_only_still_correct () =
  (* 100% hang rate: no shred can ever retire on the exo-sequencers, so
     every unit of work must eventually run through the IA32 whole-shred
     proxy — the outputs must still match the golden reference *)
  let rates = { Fault_plan.zero_rates with Fault_plan.hang = 1.0 } in
  let r = run_with ~rates "SepiaTone" in
  check_bool "IA32 fallback output is bit-correct" true r.Harness.correct;
  check_bool "fallbacks happened" true (r.Harness.fallback_shreds > 0);
  check_int "nothing fatal" 0 r.Harness.fatal_faults

let test_atr_transient_retries () =
  (* without the GTT shadow every exo TLB miss is a full proxy round
     trip, each of which can be hit by a transient failure *)
  let rates = { Fault_plan.zero_rates with Fault_plan.atr_transient = 0.5 } in
  let r = run_with ~rates ~gtt_enabled:false "SepiaTone" in
  check_bool "correct despite flaky ATR proxy" true r.Harness.correct;
  check_bool "proxy round trips were retried" true (r.Harness.retries > 0)

let test_gtt_corruption_repaired () =
  let rates = { Fault_plan.zero_rates with Fault_plan.gtt_corrupt = 0.3 } in
  let r = run_with ~rates "SepiaTone" in
  check_bool "correct despite GTT-shadow corruption" true r.Harness.correct;
  check_bool "corruptions were hit" true (r.Harness.faults_injected > 0)

(* ---- runtime-level recovery counters (CHI-lite, Figure 6 program) ---- *)

let vadd_src =
  {|
int A[256];
int B[256];
int C[256];

void main() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    A[i] = i;
    B[i] = 1000 * i;
  }
  chi_desc(A, 0, 256, 1);
  chi_desc(B, 0, 256, 1);
  chi_desc(C, 1, 256, 1);
  #pragma omp parallel target(X3000) shared(A, B, C) private(i)
  for (i = 0; i < 32; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    ld.8.dw    [vr10..vr17] = (B, vr1, 0)
    add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw    (C, vr1, 0) = [vr18..vr25]
    end
  }
  print_int(C[1]);
  print_int(C[255]);
}
|}

let run_vadd ?trace rates =
  let compiled =
    match Chilite_compile.compile ~name:"vadd" vadd_src with
    | Ok c -> c
    | Error e -> Alcotest.failf "compile: %s" (Exochi_isa.Loc.error_to_string e)
  in
  let fault_plan = Fault_plan.create ~seed:11L ~rates () in
  let platform = Exo_platform.create ~fault_plan ?trace () in
  let prog = Chilite_run.load ~platform compiled in
  Chilite_run.run prog;
  check_bool "program output" true (Chilite_run.output prog = [ 1001; 255255 ]);
  (platform, Chi_runtime.recovery (Chilite_run.runtime prog))

let test_lost_doorbell_redelivered () =
  (* every SIGNAL doorbell is lost: forward progress depends entirely on
     the runtime noticing parked shreds and re-ringing *)
  let _, r =
    run_vadd { Fault_plan.zero_rates with Fault_plan.lost_signal = 1.0 }
  in
  check_bool "doorbells re-rung" true (r.Chi_runtime.doorbell_redeliveries >= 1);
  check_int "nothing fatal" 0 r.Chi_runtime.fatal

let test_watchdog_and_redispatch () =
  let _, r = run_vadd { Fault_plan.zero_rates with Fault_plan.hang = 0.4 } in
  check_bool "watchdog reaped hung shreds" true (r.Chi_runtime.watchdog_kills > 0);
  check_bool "hung shreds were re-dispatched" true (r.Chi_runtime.redispatches > 0);
  check_int "nothing fatal" 0 r.Chi_runtime.fatal

let test_redispatch_jitter () =
  (* re-dispatch backoff is jittered over the top half of the exponential
     window: a wave of shreds reaped together must not be released in
     lock-step, and the jitter stream is part of the deterministic plan *)
  let rates = { Fault_plan.zero_rates with Fault_plan.hang = 0.6 } in
  let collect () =
    let trace = Exochi_obs.Trace.create () in
    ignore (run_vadd ~trace rates);
    List.filter_map
      (fun e ->
        match e.Exochi_obs.Trace.kind with
        | Exochi_obs.Trace.Redispatch { shred_id; attempt; delay_ps } ->
          Some (e.Exochi_obs.Trace.ts_ps, shred_id, attempt, delay_ps)
        | _ -> None)
      (Exochi_obs.Trace.events trace)
  in
  let evs = collect () in
  check_bool "re-dispatches happened" true (List.length evs >= 2);
  (* jitter stays inside [base/2, base] of the exponential window *)
  List.iter
    (fun (_, _, attempt, delay_ps) ->
      let base = 200_000 * (1 lsl min 8 (attempt - 1)) in
      check_bool "delay within jitter window" true
        (delay_ps >= base / 2 && delay_ps <= base))
    evs;
  (* no collisions: shreds reaped at the same instant with the same
     attempt count get distinct release times *)
  let release = Hashtbl.create 16 in
  List.iter
    (fun (ts, _, attempt, delay_ps) ->
      let key = (ts, attempt, ts + delay_ps) in
      check_bool "concurrent reaps decorrelated" false (Hashtbl.mem release key);
      Hashtbl.replace release key ())
    evs;
  (* the jitter stream is seeded from the plan: equal seeds, equal waves *)
  check_bool "jitter is deterministic" true (collect () = evs)

let test_atr_platform_counter () =
  (* GTT corruption forces full proxy re-walks, which the transient
     failures then hit; the recovery retries must repair both *)
  let platform, _ =
    run_vadd
      {
        Fault_plan.zero_rates with
        Fault_plan.atr_transient = 1.0;
        gtt_corrupt = 1.0;
      }
  in
  check_bool "platform counted ATR retries" true
    (Exo_platform.atr_transient_retries platform > 0)

(* ---- CEH fault paths end to end (fdiv / fsqrt / dpadd) ---- *)

let ceh_src =
  {|
  mov.1.dw vr9 = 0
  mov.4.f vr0 = 8.0
  mov.1.f vr1 = 2.0
  bcast.4.f vr1 = vr1
  bcast.4.dw vr3 = 0
  add.4.dw vr3 = vr3, %lane
  cmp.eq.4.dw f0 = vr3, 1
  (f0) mov.4.f vr1 = 0.0
  cmp.eq.4.dw f1 = vr3, 2
  (f1) mov.4.f vr1 = 0.0
  fdiv.4.f vr4 = vr0, vr1
  st.4.dw (OUT, vr9, 0) = vr4
  mov.4.f vr5 = 4.0
  (f0) mov.4.f vr5 = -4.0
  cmp.eq.4.dw f2 = vr3, 2
  (f2) mov.4.f vr5 = 9.0
  cmp.eq.4.dw f3 = vr3, 3
  (f3) mov.4.f vr5 = -1.0
  fsqrt.4.f vr6 = vr5
  mov.1.dw vr9 = 4
  st.4.dw (OUT, vr9, 0) = vr6
  bcast.2.dw vr18 = 0
  add.2.dw vr18 = vr18, %lane
  cmp.eq.2.dw f0 = vr18, 0
  bcast.2.dw vr16 = 1073217536
  (f0) mov.2.dw vr16 = 0
  bcast.2.dw vr17 = 1070596096
  (f0) mov.2.dw vr17 = 0
  dpadd.2.dw vr20 = vr16, vr17
  mov.1.dw vr9 = 8
  st.2.dw (OUT, vr9, 0) = vr20
  end
|}

let run_ceh ?fault_plan () =
  let platform = Exo_platform.create ?fault_plan () in
  let aspace = Exo_platform.aspace platform in
  let base = Address_space.alloc aspace ~name:"OUT" ~bytes:4096 ~align:64 in
  let d =
    Chi_descriptor.alloc platform ~name:"OUT" ~base ~width:16 ~height:1 ~bpp:4
      ~mode:Chi_descriptor.Output ()
  in
  let prog = Exochi_isa.X3k_asm.assemble_exn ~name:"ceh" ceh_src in
  let gpu = Exo_platform.gpu platform in
  Gpu.bind gpu ~prog ~surfaces:[| d.Chi_descriptor.surface |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  ignore (Gpu.run_to_quiescence gpu);
  let lane i =
    Int32.float_of_bits (Address_space.read_u32 aspace (base + (4 * i)))
  in
  let dbl =
    let lo = Address_space.read_u32 aspace (base + 32) in
    let hi = Address_space.read_u32 aspace (base + 36) in
    Int64.float_of_bits
      (Int64.logor
         (Int64.shift_left (Int64.logand (Int64.of_int32 hi) 0xFFFFFFFFL) 32)
         (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL))
  in
  (platform, lane, dbl)

let check_ceh_outputs (lane, dbl) =
  (* fdiv 8/{2,0,0,2}: faulting lanes resolve to IEEE infinities *)
  check_bool "fdiv lane0" true (lane 0 = 4.0);
  check_bool "fdiv lane1 = inf" true (lane 1 = infinity);
  check_bool "fdiv lane2 = inf" true (lane 2 = infinity);
  check_bool "fdiv lane3" true (lane 3 = 4.0);
  (* fsqrt {4,-4,9,-1}: negatives resolve to IEEE NaN *)
  check_bool "fsqrt lane0" true (lane 4 = 2.0);
  check_bool "fsqrt lane1 = nan" true (Float.is_nan (lane 5));
  check_bool "fsqrt lane2" true (lane 6 = 3.0);
  check_bool "fsqrt lane3 = nan" true (Float.is_nan (lane 7));
  (* dpadd: 1.5 + 0.25 in double precision, written back as a word pair *)
  check_bool "dpadd 1.5+0.25" true (dbl = 1.75)

let test_ceh_writeback () =
  let platform, lane, dbl = run_ceh () in
  check_ceh_outputs (lane, dbl);
  check_bool "three CEH proxy executions" true
    (Exo_platform.ceh_proxies platform >= 3)

let test_ceh_spurious_absorbed () =
  (* spurious CEH faults replay the instruction after a wasted proxy
     round trip; the architectural results must be unchanged *)
  let fault_plan =
    Fault_plan.create ~seed:3L
      ~rates:{ Fault_plan.zero_rates with Fault_plan.ceh_spurious = 0.5 }
      ()
  in
  let platform, lane, dbl = run_ceh ~fault_plan () in
  check_ceh_outputs (lane, dbl);
  check_bool "spurious faults were delivered" true
    (Exo_platform.ceh_spurious platform > 0)

let test_emulator_matches_ceh_hardware () =
  (* the IA32 whole-shred fallback emulator must produce the same IEEE
     results as the hardware + CEH-proxy path, including faulting lanes *)
  let platform, hw_lane, hw_dbl = run_ceh () in
  let aspace = Exo_platform.aspace platform in
  let base2 = Address_space.alloc aspace ~name:"OUT2" ~bytes:4096 ~align:64 in
  let d2 =
    Chi_descriptor.alloc platform ~name:"OUT" ~base:base2 ~width:16 ~height:1
      ~bpp:4 ~mode:Chi_descriptor.Output ()
  in
  let prog = Exochi_isa.X3k_asm.assemble_exn ~name:"ceh" ceh_src in
  let gpu = Exo_platform.gpu platform in
  Gpu.bind gpu ~prog ~surfaces:[| d2.Chi_descriptor.surface |];
  ignore
    (Gpu.emulate_shred gpu { Gpu.shred_id = 1; entry = 0; params = [||] });
  let em_lane i =
    Int32.float_of_bits (Address_space.read_u32 aspace (base2 + (4 * i)))
  in
  for i = 0 to 7 do
    check_bool
      (Printf.sprintf "lane %d matches hardware" i)
      true
      (Int32.bits_of_float (em_lane i) = Int32.bits_of_float (hw_lane i))
  done;
  let em_dbl =
    let lo = Address_space.read_u32 aspace (base2 + 32) in
    let hi = Address_space.read_u32 aspace (base2 + 36) in
    Int64.float_of_bits
      (Int64.logor
         (Int64.shift_left (Int64.logand (Int64.of_int32 hi) 0xFFFFFFFFL) 32)
         (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL))
  in
  check_bool "dpadd matches hardware" true (em_dbl = hw_dbl)

(* ---- segfault diagnostics ---- *)

let test_segfault_payload () =
  let platform = Exo_platform.create () in
  let gpu = Exo_platform.gpu platform in
  (* a surface over an address range nothing ever allocated *)
  let bogus = 0x4000_0000 in
  let s =
    Surface.make ~id:1 ~name:"BAD" ~base:bogus ~width:16 ~height:1 ~bpp:4
      ~tiling:Surface.Linear ~mode:Surface.In_out
  in
  let prog =
    Exochi_isa.X3k_asm.assemble_exn ~name:"seg"
      "  mov.1.dw vr0 = 0\n  st.1.dw (BAD, vr0, 0) = vr0\n  end\n"
  in
  Gpu.bind gpu ~prog ~surfaces:[| s |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 7; entry = 0; params = [||] } ];
  match Gpu.run_to_quiescence gpu with
  | _ -> Alcotest.fail "expected Gpu_segfault"
  | exception Gpu.Gpu_segfault { vaddr; vpage; shred_id } ->
    check_int "faulting vaddr" bogus vaddr;
    check_int "faulting vpage" (bogus lsr 12) vpage;
    check_int "faulting shred" 7 shred_id

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "of_spec" `Quick test_of_spec;
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "zero rate never fires" `Quick
            test_zero_rate_never_fires;
          Alcotest.test_case "class stream independence" `Quick
            test_class_independence;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "result determinism" `Quick test_result_determinism;
          Alcotest.test_case "zero-rate identity" `Quick test_zero_rate_identity;
          Alcotest.test_case "1% sweep stays correct" `Quick
            test_one_percent_sweep;
          Alcotest.test_case "quarantine under hang storm" `Quick
            test_quarantine_under_hang_storm;
          Alcotest.test_case "pure-fallback correctness" `Quick
            test_fallback_only_still_correct;
          Alcotest.test_case "ATR transient retries" `Quick
            test_atr_transient_retries;
          Alcotest.test_case "GTT corruption repaired" `Quick
            test_gtt_corruption_repaired;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "lost doorbells re-rung" `Quick
            test_lost_doorbell_redelivered;
          Alcotest.test_case "watchdog + redispatch" `Quick
            test_watchdog_and_redispatch;
          Alcotest.test_case "redispatch jitter" `Quick test_redispatch_jitter;
          Alcotest.test_case "ATR platform counter" `Quick
            test_atr_platform_counter;
        ] );
      ( "ceh",
        [
          Alcotest.test_case "fdiv/fsqrt/dpadd writeback" `Quick
            test_ceh_writeback;
          Alcotest.test_case "spurious CEH absorbed" `Quick
            test_ceh_spurious_absorbed;
          Alcotest.test_case "emulator matches CEH hardware" `Quick
            test_emulator_matches_ceh_hardware;
        ] );
      ( "segfault",
        [ Alcotest.test_case "payload" `Quick test_segfault_payload ] );
    ]
