(* Exo-guard: FNV-1a integrity checksums, circuit-breaker state machine,
   the crash-safe journal, and the guard stack end to end on the serving
   pipeline — SDC detection with zero escapes, hedged re-dispatch,
   probationary breaker reinstatement, all-breakers-open fallback, and
   deterministic crash recovery. *)

open Exochi_serving
module Checksum = Exochi_guard.Checksum
module Breaker = Exochi_guard.Breaker
module Fault_plan = Exochi_faults.Fault_plan
module Journal = Serve_journal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- FNV-1a checksums ---- *)

let test_checksum_vectors () =
  (* the canonical FNV-1a 64-bit test vectors *)
  check_bool "empty" true (Checksum.of_string "" = 0xcbf29ce484222325L);
  check_bool "a" true (Checksum.of_string "a" = 0xaf63dc4c8601ec8cL);
  check_bool "foobar" true
    (Checksum.of_string "foobar" = 0x85944171f73967e8L);
  check_string "hex rendering" "cbf29ce484222325"
    (Checksum.to_hex Checksum.offset_basis)

let test_checksum_incremental () =
  let whole = Checksum.of_string "exochi-guard" in
  let parts =
    Checksum.add_string (Checksum.add_string Checksum.offset_basis "exochi-")
      "guard"
  in
  check_bool "incremental = whole" true (whole = parts);
  check_bool "bytes = string" true
    (Checksum.of_bytes (Bytes.of_string "exochi-guard") = whole);
  check_bool "one flipped byte changes the sum" true
    (Checksum.of_string "exochi-guarD" <> whole);
  check_bool "int64 little-endian mix" true
    (Checksum.add_int64 Checksum.offset_basis 0x0102030405060708L
    = Checksum.of_string "\x08\x07\x06\x05\x04\x03\x02\x01")

(* ---- breaker state machine ---- *)

let test_breaker_trips_on_burst () =
  let b = Breaker.create ~fail_threshold:3 ~cooldown_ps:1_000 in
  check_bool "starts closed" true (Breaker.state b = Breaker.Closed);
  check_bool "full health" true (Breaker.health b = 1.0);
  Breaker.record_fail b;
  Breaker.record_fail b;
  check_bool "two fails: not yet" false (Breaker.should_open b);
  Breaker.record_fail b;
  check_bool "three consecutive fails trip" true (Breaker.should_open b);
  Breaker.trip b ~now_ps:100;
  check_bool "open" true (Breaker.state b = Breaker.Open);
  check_int "one trip" 1 (Breaker.trips b)

let test_breaker_trips_on_ewma () =
  (* a 2:1 fail/ok mix never reaches the consecutive threshold but
     grinds health down until the EWMA condition trips *)
  let b = Breaker.create ~fail_threshold:1000 ~cooldown_ps:1_000 in
  let tripped = ref false in
  for _ = 1 to 50 do
    if not !tripped then begin
      Breaker.record_fail b;
      if Breaker.should_open b then tripped := true
      else begin
        Breaker.record_fail b;
        if Breaker.should_open b then tripped := true
        else Breaker.record_ok b
      end
    end
  done;
  check_bool "health decayed" true (Breaker.health b < 0.6);
  check_bool "EWMA condition eventually trips" true !tripped

let test_breaker_probe_success_reinstates () =
  let b = Breaker.create ~fail_threshold:2 ~cooldown_ps:1_000 in
  Breaker.record_fail b;
  Breaker.record_fail b;
  Breaker.trip b ~now_ps:0;
  check_bool "before cooldown: stays open" false (Breaker.poll b ~now_ps:500);
  check_bool "after cooldown: half-open" true (Breaker.poll b ~now_ps:1_000);
  check_bool "poll fires exactly once" false (Breaker.poll b ~now_ps:2_000);
  check_bool "half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_ok b;
  Breaker.close b;
  check_bool "probe success closes" true (Breaker.state b = Breaker.Closed);
  check_bool "health restored to at least 0.5" true (Breaker.health b >= 0.5);
  check_int "cooldown reset" 1_000 (Breaker.cooldown_ps b)

let test_breaker_probe_failure_doubles_cooldown () =
  let b = Breaker.create ~fail_threshold:2 ~cooldown_ps:1_000 in
  Breaker.record_fail b;
  Breaker.record_fail b;
  Breaker.trip b ~now_ps:0;
  ignore (Breaker.poll b ~now_ps:1_000);
  (* the probe fails: re-open with a doubled cool-down *)
  Breaker.record_fail b;
  Breaker.trip b ~now_ps:1_500;
  check_bool "re-opened" true (Breaker.state b = Breaker.Open);
  check_int "cooldown doubled" 2_000 (Breaker.cooldown_ps b);
  check_bool "not yet: doubled window" false (Breaker.poll b ~now_ps:3_000);
  check_bool "half-open after doubled window" true
    (Breaker.poll b ~now_ps:3_500);
  (* repeated probe failures converge to the 256x cap *)
  for i = 0 to 20 do
    Breaker.record_fail b;
    Breaker.trip b ~now_ps:(10_000 * (i + 1));
    ignore (Breaker.poll b ~now_ps:max_int)
  done;
  check_int "cooldown capped at 256x base" 256_000 (Breaker.cooldown_ps b)

(* ---- journal framing + replay ---- *)

let temp_path name = Filename.temp_file "exochi-guard" name

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let test_journal_roundtrip () =
  let path = temp_path "journal" in
  let fp = Journal.fingerprint [ "closed"; "42"; "7:0.001" ] in
  let w = Journal.start path ~fingerprint:fp in
  Journal.record w (Journal.Admit { job = 0; at_ps = 10 });
  Journal.record w (Journal.Admit { job = 1; at_ps = 12 });
  Journal.record w
    (Journal.Done { job = 0; done_ps = 99; drawn = [| 1; 2; 3; 4; 5 |] });
  Journal.record w (Journal.Shed { job = 1; reason = "queue-full" });
  Journal.close w;
  let rp = Journal.load path in
  check_bool "fingerprint" true (rp.Journal.rp_fingerprint = Some fp);
  check_bool "not truncated" false rp.Journal.rp_truncated;
  check_int "no garbled records" 0 rp.Journal.rp_garbled;
  check_bool "admissions in order" true
    (rp.Journal.rp_admitted = [ (0, 10); (1, 12) ]);
  check_bool "completion carries stream positions" true
    (rp.Journal.rp_completed = [ (0, [| 1; 2; 3; 4; 5 |]) ]);
  check_bool "shed recorded" true (rp.Journal.rp_shed = [ (1, "queue-full") ]);
  check_bool "nothing unacked" true (Journal.unacked rp = []);
  Sys.remove path

let test_journal_torn_tail () =
  let path = temp_path "torn" in
  let fp = Journal.fingerprint [ "x" ] in
  let w = Journal.start path ~fingerprint:fp in
  for j = 0 to 9 do
    Journal.record w (Journal.Admit { job = j; at_ps = j })
  done;
  Journal.close w;
  let whole = read_file path in
  (* tear mid-frame: drop the last 5 bytes *)
  write_file path (String.sub whole 0 (String.length whole - 5));
  let rp = Journal.load path in
  check_bool "torn tail detected" true rp.Journal.rp_truncated;
  check_bool "fingerprint survives" true (rp.Journal.rp_fingerprint = Some fp);
  check_int "clean prefix kept" 9 (List.length rp.Journal.rp_admitted);
  (* a checksum-corrupt record is dropped the same way *)
  let flip = Bytes.of_string whole in
  let pos = String.length whole - 3 in
  Bytes.set flip pos (Char.chr (Char.code (Bytes.get flip pos) lxor 0x40));
  write_file path (Bytes.to_string flip);
  let rp = Journal.load path in
  check_bool "corrupt tail detected" true rp.Journal.rp_truncated;
  check_int "prefix before corruption kept" 9
    (List.length rp.Journal.rp_admitted);
  check_bool "stranded admissions reported" true
    (List.length (Journal.unacked rp) = 9);
  Sys.remove path

let test_journal_missing_file () =
  let path = temp_path "missing" in
  Sys.remove path;
  let rp = Journal.load path in
  check_bool "no fingerprint" true (rp.Journal.rp_fingerprint = None);
  check_bool "empty" true (rp.Journal.rp_admitted = []);
  check_bool "not truncated" false rp.Journal.rp_truncated

(* ---- fault-plan stream positions ---- *)

let test_drawn_counts () =
  let plan =
    Fault_plan.create ~seed:3L
      ~rates:{ Fault_plan.zero_rates with Fault_plan.hang = 0.5 }
      ()
  in
  for _ = 1 to 100 do
    ignore (Fault_plan.decide plan Fault_plan.Shred_hang);
    ignore (Fault_plan.decide plan Fault_plan.Gtt_corrupt)
  done;
  check_int "every decide on a hot class is one draw" 100
    (Fault_plan.drawn plan Fault_plan.Shred_hang);
  check_int "zero-rate classes never draw" 0
    (Fault_plan.drawn plan Fault_plan.Gtt_corrupt);
  let counts = Fault_plan.drawn_counts plan in
  check_int "counts in class order" 100 counts.(0);
  check_bool "fresh copy" true
    (counts.(0) <- 0;
     Fault_plan.drawn plan Fault_plan.Shred_hang = 100)

(* ---- the guard stack on the serving pipeline ---- *)

let closed ?(clients = 3) () =
  Workload.Closed { clients_per_tenant = clients; think_ps = 0 }

let serve_once ?(jobs = 50) ?(seed = 42L) ?fault_plan config =
  let server = Server.create ~config ?fault_plan () in
  let wl = Workload.create (Workload.default_spec ~seed ~tenants:2 ~jobs (closed ())) in
  Server.run server wl

let guarded ?(audit = 0.05) ?(hedge_us = 0) ?(cooldown_us = 0) () =
  {
    Server.default_config with
    guard = Some { Server.g_audit_frac = audit };
    hedge_after_ps = hedge_us * 1_000_000;
    breaker_cooldown_ps = cooldown_us * 1_000_000;
  }

let test_sdc_zero_escapes () =
  (* GTT/CEH faults at 1e-3 flip output bytes; every flip must be
     detected — the acceptance bar is zero undetected wrong results *)
  let fault_plan =
    Fault_plan.create ~seed:7L
      ~rates:
        {
          Fault_plan.zero_rates with
          Fault_plan.gtt_corrupt = 0.001;
          ceh_spurious = 0.001;
        }
      ()
  in
  let st = serve_once ~fault_plan (guarded ()) in
  let r = st.Server_stats.recovery in
  check_bool "corruption actually happened" true
    (r.Server_stats.r_sdc_corrupted > 0);
  check_int "zero undetected wrong results" r.Server_stats.r_sdc_corrupted
    r.Server_stats.r_sdc_detected;
  check_bool "audits sampled and charged" true
    (r.Server_stats.r_audit_shreds > 0);
  check_int "all jobs completed" st.Server_stats.submitted
    st.Server_stats.completed;
  check_int "nothing fatal" 0 r.Server_stats.r_fatal

let test_guard_off_counts_nothing () =
  let fault_plan =
    Fault_plan.create ~seed:7L ~rates:(Fault_plan.uniform_rates 0.001) ()
  in
  let st = serve_once ~fault_plan Server.default_config in
  let r = st.Server_stats.recovery in
  check_int "no SDC model without the guard" 0 r.Server_stats.r_sdc_corrupted;
  check_int "no audits" 0 r.Server_stats.r_audit_shreds;
  check_int "no hedges" 0 r.Server_stats.r_hedges;
  check_int "no breaker activity" 0 r.Server_stats.r_breaker_opens

let test_hedging_rescues_stragglers () =
  let fault_plan =
    Fault_plan.create ~seed:5L
      ~rates:{ Fault_plan.zero_rates with Fault_plan.hang = 0.02 }
      ()
  in
  let st = serve_once ~fault_plan (guarded ~hedge_us:300 ()) in
  let r = st.Server_stats.recovery in
  check_bool "stragglers were hedged" true (r.Server_stats.r_hedges > 0);
  check_bool "some hedges won the race" true (r.Server_stats.r_hedge_wins > 0);
  check_bool "wins bounded by hedges" true
    (r.Server_stats.r_hedge_wins <= r.Server_stats.r_hedges);
  check_int "all jobs completed" st.Server_stats.submitted
    st.Server_stats.completed;
  check_int "nothing fatal" 0 r.Server_stats.r_fatal

let test_breakers_reinstate_within_run () =
  (* a hang burst trips breakers; the cool-down elapses within the run
     and successful probes must reinstate at least one sequencer *)
  let fault_plan =
    Fault_plan.create ~seed:9L
      ~rates:{ Fault_plan.zero_rates with Fault_plan.hang = 0.3 }
      ()
  in
  let st = serve_once ~jobs:60 ~fault_plan (guarded ~cooldown_us:500 ()) in
  let r = st.Server_stats.recovery in
  check_bool "breakers tripped" true (r.Server_stats.r_breaker_opens > 0);
  check_bool "at least one probationary reinstatement" true
    (r.Server_stats.r_breaker_closes >= 1);
  check_int "all jobs completed" st.Server_stats.submitted
    st.Server_stats.completed;
  check_int "nothing fatal" 0 r.Server_stats.r_fatal

let test_all_breakers_open_falls_back () =
  (* every shred hangs and the cool-down never elapses inside the run:
     all 32 breakers converge to Open and the stranded work must drain
     through the IA32 whole-shred fallback, still with zero fatalities *)
  let fault_plan =
    Fault_plan.create ~seed:2L
      ~rates:{ Fault_plan.zero_rates with Fault_plan.hang = 1.0 }
      ()
  in
  let st =
    serve_once ~jobs:12 ~fault_plan (guarded ~cooldown_us:1_000_000 ())
  in
  let r = st.Server_stats.recovery in
  check_bool "breakers opened" true (r.Server_stats.r_breaker_opens > 0);
  check_int "no reinstatement inside the run" 0
    r.Server_stats.r_breaker_closes;
  check_bool "IA32 fallback carried the work" true
    (r.Server_stats.r_fallback_shreds > 0);
  check_int "all jobs completed" st.Server_stats.submitted
    st.Server_stats.completed;
  check_int "nothing fatal" 0 r.Server_stats.r_fatal

(* ---- crash recovery end to end ---- *)

let test_recovery_reproduces_run () =
  let path = temp_path "recover" in
  let fp = Journal.fingerprint [ "guard-recovery-test" ] in
  let fault_plan () =
    Fault_plan.create ~seed:7L ~rates:(Fault_plan.uniform_rates 0.001) ()
  in
  let workload () =
    Workload.create
      (Workload.default_spec ~seed:42L ~tenants:2 ~jobs:40 (closed ()))
  in
  let config = guarded ~hedge_us:300 ~cooldown_us:500 () in
  (* uninterrupted baseline, fully journaled *)
  let w = Journal.start path ~fingerprint:fp in
  let server =
    Server.create ~config ~fault_plan:(fault_plan ()) ~journal:w ()
  in
  let baseline = Server_stats.to_json (Server.run server (workload ())) in
  Journal.close w;
  let baseline_journal = read_file path in
  (* simulate a SIGKILL: keep only a torn prefix of the journal *)
  write_file path
    (String.sub baseline_journal 0 (String.length baseline_journal * 3 / 5));
  let rp = Journal.load path in
  check_bool "prefix has completions to verify" true
    (rp.Journal.rp_completed <> []);
  check_bool "crash stranded un-acked jobs" true (Journal.unacked rp <> []);
  (* recover: redo from start, verifying against the journaled prefix *)
  let w = Journal.start path ~fingerprint:fp in
  let server =
    Server.create ~config ~fault_plan:(fault_plan ()) ~journal:w
      ~expect:rp.Journal.rp_completed ()
  in
  let recovered = Server_stats.to_json (Server.run server (workload ())) in
  Journal.close w;
  check_bool "every journaled completion retraced" true
    (Server.unverified server = 0);
  check_string "metrics bit-identical to the uninterrupted run" baseline
    recovered;
  check_string "journal rewritten byte-identical" baseline_journal
    (read_file path);
  Sys.remove path

let test_recovery_divergence_detected () =
  (* a journal from a different run must not verify: poison one drawn
     count in the expected completion sequence *)
  let fault_plan =
    Fault_plan.create ~seed:7L ~rates:(Fault_plan.uniform_rates 0.001) ()
  in
  let wl =
    Workload.create
      (Workload.default_spec ~seed:42L ~tenants:2 ~jobs:20 (closed ()))
  in
  let server =
    Server.create ~config:(guarded ()) ~fault_plan
      ~expect:[ (999, [| 1; 2; 3; 4; 5 |]) ]
      ()
  in
  match Server.run server wl with
  | (_ : Server_stats.t) -> Alcotest.fail "divergent replay must raise"
  | exception Failure msg ->
    check_bool "error names the divergence" true
      (Astring.String.is_infix ~affix:"divergence" msg)

(* ---- guard counters surface in the stats JSON ---- *)

let test_guard_json_fields () =
  let fault_plan =
    Fault_plan.create ~seed:7L ~rates:(Fault_plan.uniform_rates 0.001) ()
  in
  let st = serve_once ~fault_plan (guarded ~hedge_us:300 ~cooldown_us:500 ()) in
  let json = Server_stats.to_json st in
  List.iter
    (fun field ->
      check_bool (field ^ " present") true
        (Astring.String.is_infix ~affix:(Printf.sprintf "%S" field) json))
    [
      "sdc_corrupted"; "sdc_detected"; "audit_shreds"; "hedges";
      "hedge_wins"; "breaker_opens"; "breaker_closes";
    ]

let () =
  Alcotest.run "guard"
    [
      ( "checksum",
        [
          Alcotest.test_case "FNV-1a vectors" `Quick test_checksum_vectors;
          Alcotest.test_case "incremental" `Quick test_checksum_incremental;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips on burst" `Quick test_breaker_trips_on_burst;
          Alcotest.test_case "trips on EWMA decay" `Quick
            test_breaker_trips_on_ewma;
          Alcotest.test_case "probe success reinstates" `Quick
            test_breaker_probe_success_reinstates;
          Alcotest.test_case "probe failure doubles cooldown" `Quick
            test_breaker_probe_failure_doubles_cooldown;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "missing file" `Quick test_journal_missing_file;
        ] );
      ( "fault streams",
        [ Alcotest.test_case "drawn counts" `Quick test_drawn_counts ] );
      ( "serving",
        [
          Alcotest.test_case "SDC: zero escapes" `Quick test_sdc_zero_escapes;
          Alcotest.test_case "guard off counts nothing" `Quick
            test_guard_off_counts_nothing;
          Alcotest.test_case "hedging rescues stragglers" `Quick
            test_hedging_rescues_stragglers;
          Alcotest.test_case "breakers reinstate within run" `Quick
            test_breakers_reinstate_within_run;
          Alcotest.test_case "all breakers open -> IA32 fallback" `Quick
            test_all_breakers_open_falls_back;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash + recover reproduces run" `Quick
            test_recovery_reproduces_run;
          Alcotest.test_case "divergence detected" `Quick
            test_recovery_divergence_detected;
        ] );
      ( "stats",
        [ Alcotest.test_case "JSON fields" `Quick test_guard_json_fields ] );
    ]
