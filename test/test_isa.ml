open Exochi_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let x3k_ok src =
  match X3k_asm.assemble ~name:"t" src with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected error: %s" (Loc.error_to_string e)

let x3k_err src =
  match X3k_asm.assemble ~name:"t" src with
  | Ok _ -> Alcotest.fail "expected an assembler error"
  | Error e -> e

let via_ok src =
  match Via32_asm.assemble ~name:"t" src with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected error: %s" (Loc.error_to_string e)

let via_err src =
  match Via32_asm.assemble ~name:"t" src with
  | Ok _ -> Alcotest.fail "expected an assembler error"
  | Error e -> e

(* ---- lexer ---- *)

let test_lexer_tokens () =
  let lx = Asm_lexer.create ~file:"t" "mov.8 [vr1..vr2], -42 ; comment\n%sid" in
  let rec collect acc =
    match Asm_lexer.next lx with
    | Ok (Asm_lexer.EOF, _) -> List.rev acc
    | Ok (t, _) -> collect (t :: acc)
    | Error _ -> Alcotest.fail "lex error"
  in
  let toks = collect [] in
  check_int "token count" 14 (List.length toks);
  check_bool "comment skipped" true
    (List.for_all (function Asm_lexer.IDENT "comment" -> false | _ -> true) toks)

let test_lexer_hex_and_floats () =
  let lx = Asm_lexer.create ~file:"t" "0x1F 2.5 1e3" in
  (match Asm_lexer.next lx with
  | Ok (Asm_lexer.INT 31L, _) -> ()
  | _ -> Alcotest.fail "hex");
  (match Asm_lexer.next lx with
  | Ok (Asm_lexer.FLOAT f, _) when f = 2.5 -> ()
  | _ -> Alcotest.fail "float");
  (* 1e3 without a dot lexes as INT 1 followed by IDENT e3 *)
  match Asm_lexer.next lx with
  | Ok (Asm_lexer.INT 1L, _) -> ()
  | _ -> Alcotest.fail "int before exponent needs a dot"

let test_lexer_bad_char () =
  let lx = Asm_lexer.create ~file:"t" "mov $" in
  ignore (Asm_lexer.next lx);
  match Asm_lexer.next lx with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected lex error"

(* ---- X3K parsing and validation ---- *)

let fig6 =
  {|
  shl.1.dw   vr1 = %p0, 3
  ld.8.dw    [vr2..vr9] = (A, vr1, 0)
  ld.8.dw    [vr10..vr17] = (B, vr1, 0)
  add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw    (C, vr1, 0) = [vr18..vr25]
  end
|}

let test_x3k_fig6_parses () =
  let p = x3k_ok fig6 in
  check_int "instr count" 6 (Array.length p.X3k_ast.instrs);
  check_int "three surfaces interned" 3 (Array.length p.X3k_ast.surfaces);
  check_bool "slots in order" true (p.X3k_ast.surfaces = [| "A"; "B"; "C" |])

let test_x3k_labels_resolve () =
  let p = x3k_ok "L:\n  add.1.dw vr0 = vr0, 1\n  jmp L\n" in
  match p.X3k_ast.instrs.(1).X3k_ast.srcs with
  | [ X3k_ast.Imm 0l ] -> ()
  | _ -> Alcotest.fail "label should resolve to instruction 0"

let test_x3k_undefined_label () =
  let e = x3k_err "  jmp NOWHERE\n  end\n" in
  check_bool "message" true
    (Astring.String.is_infix ~affix:"undefined label" e.Loc.msg)

let test_x3k_duplicate_label () =
  let e = x3k_err "A:\nA:\n  end\n" in
  check_bool "message" true
    (Astring.String.is_infix ~affix:"duplicate label" e.Loc.msg)

let test_x3k_bad_register () =
  let e = x3k_err "  mov.1.dw vr200 = 0\n  end\n" in
  check_bool "register range" true
    (Astring.String.is_infix ~affix:"vr200" e.Loc.msg)

let test_x3k_width_divisibility () =
  let e = x3k_err "  add.8.dw [vr0..vr2] = vr4, vr5\n  end\n" in
  check_bool "divisibility" true
    (Astring.String.is_infix ~affix:"not divisible" e.Loc.msg)

let test_x3k_missing_end () =
  let e = x3k_err "  mov.1.dw vr0 = 1\n" in
  check_bool "termination check" true
    (Astring.String.is_infix ~affix:"must end" e.Loc.msg)

let test_x3k_cmp_needs_flag_dst () =
  let e = x3k_err "  cmp.lt.1.dw vr0 = vr1, vr2\n  end\n" in
  check_bool "flag dst" true
    (Astring.String.is_infix ~affix:"flag register" e.Loc.msg)

let test_x3k_sel_requires_pred () =
  let e = x3k_err "  sel.8.dw vr0 = vr1, vr2\n  end\n" in
  check_bool "pred" true
    (Astring.String.is_infix ~affix:"predication" e.Loc.msg)

let test_x3k_branch_target_checked () =
  (* hand-build an out-of-range target through the parser is impossible,
     so exercise the arity error instead *)
  let e = x3k_err "  br.any f0\n  end\n" in
  check_bool "br arity" true
    (Astring.String.is_infix ~affix:"expects" e.Loc.msg)

(* the checkers report *every* offending instruction, in program order;
   [assemble] keeps its one-error signature by returning the first *)

let test_x3k_accumulates_all_errors () =
  let src = "  cmp.lt.1.dw vr0 = vr1, vr2\n  sel.8.dw vr3 = vr4, vr5\n" in
  match X3k_asm.assemble_all ~name:"t" src with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error errs ->
    check_int "all three reported" 3 (List.length errs);
    (match errs with
    | [ e1; e2; e3 ] ->
      check_bool "flag dst first" true
        (Astring.String.is_infix ~affix:"flag register" e1.Loc.msg);
      check_int "line 1" 1 e1.Loc.loc.Loc.line;
      check_bool "sel predication second" true
        (Astring.String.is_infix ~affix:"predication" e2.Loc.msg);
      check_int "line 2" 2 e2.Loc.loc.Loc.line;
      check_bool "termination last" true
        (Astring.String.is_infix ~affix:"must end" e3.Loc.msg)
    | _ -> Alcotest.fail "expected exactly three errors");
    (* assemble returns the first of the accumulated errors *)
    (match X3k_asm.assemble ~name:"t" src with
    | Error e -> check_bool "first error" true (e.Loc.msg = (List.hd errs).Loc.msg)
    | Ok _ -> Alcotest.fail "expected an error")

let test_via32_accumulates_all_errors () =
  let src = "  mov.d [eax], [ebx]\n  shl eax, [ebx]\n  mov.d eax, 1\n" in
  match Via32_asm.assemble_all ~name:"t" src with
  | Ok _ -> Alcotest.fail "expected errors"
  | Error errs ->
    check_int "all three reported" 3 (List.length errs);
    let lines = List.map (fun e -> e.Loc.loc.Loc.line) errs in
    check_bool "in program order" true (lines = [ 1; 2; 3 ]);
    check_bool "termination last" true
      (Astring.String.is_infix ~affix:"must end"
         (List.nth errs 2).Loc.msg)

let test_x3k_predication_parses () =
  let p = x3k_ok "  cmp.lt.8.dw f1 = vr0, vr1\n  (!f1) mov.8.dw vr2 = 0\n  end\n" in
  match p.X3k_ast.instrs.(1).X3k_ast.pred with
  | Some { X3k_ast.flag = 1; negate = true } -> ()
  | _ -> Alcotest.fail "negated predication"

let test_x3k_float_imm () =
  let p = x3k_ok "  fadd.4.f vr0 = vr1, 1.5\n  end\n" in
  match p.X3k_ast.instrs.(0).X3k_ast.srcs with
  | [ _; X3k_ast.Imm bits ] ->
    Alcotest.(check (float 0.0)) "bits" 1.5 (Int32.float_of_bits bits)
  | _ -> Alcotest.fail "imm"

let test_x3k_sem_suffixes () =
  let p = x3k_ok "  sem.acq 3\n  sem.rel 3\n  end\n" in
  check_bool "acq" true (p.X3k_ast.instrs.(0).X3k_ast.op = X3k_ast.Semacq);
  check_bool "rel" true (p.X3k_ast.instrs.(1).X3k_ast.op = X3k_ast.Semrel)

let test_x3k_remote_and_spawn () =
  let p =
    x3k_ok
      "CHILD:\n  end\n  sendreg @(vr1, 7) = vr2\n  spawn CHILD, vr3\n  end\n"
  in
  (match p.X3k_ast.instrs.(1).X3k_ast.dst with
  | Some (X3k_ast.Remote { shred_reg = 1; reg = 7 }) -> ()
  | _ -> Alcotest.fail "remote operand");
  match p.X3k_ast.instrs.(2).X3k_ast.srcs with
  | [ X3k_ast.Imm 0l; X3k_ast.Reg 3 ] -> ()
  | _ -> Alcotest.fail "spawn operands"

(* round trip: source -> program -> binary -> program *)
let test_x3k_binary_roundtrip () =
  let p = x3k_ok fig6 in
  let bin = X3k_asm.to_binary p in
  match X3k_asm.of_binary ~name:"t" bin with
  | Error e -> Alcotest.fail e
  | Ok p2 ->
    check_int "instrs" (Array.length p.X3k_ast.instrs)
      (Array.length p2.X3k_ast.instrs);
    Array.iteri
      (fun i instr ->
        check_bool "instr equal" true (instr = p2.X3k_ast.instrs.(i)))
      p.X3k_ast.instrs;
    check_bool "surfaces" true (p.X3k_ast.surfaces = p2.X3k_ast.surfaces);
    check_bool "labels" true
      (List.sort compare p.X3k_ast.labels = List.sort compare p2.X3k_ast.labels)

(* property: random well-formed ALU programs round-trip through the
   encoder *)
let x3k_gen_instr =
  QCheck.Gen.(
    let reg = int_bound 127 in
    let width = oneofl [ 1; 2; 4; 8; 16 ] in
    let dt = oneofl [ X3k_ast.B; X3k_ast.W; X3k_ast.DW ] in
    let op =
      oneofl
        [
          X3k_ast.Add; X3k_ast.Sub; X3k_ast.Mul; X3k_ast.Min; X3k_ast.Max;
          X3k_ast.And; X3k_ast.Or; X3k_ast.Xor; X3k_ast.Avg;
        ]
    in
    let imm = map Int32.of_int (int_range (-1000000) 1000000) in
    let operand =
      frequency
        [ (3, map (fun r -> X3k_ast.Reg r) reg); (1, map (fun i -> X3k_ast.Imm i) imm) ]
    in
    let pred =
      frequency
        [
          (3, return None);
          ( 1,
            map2
              (fun f n -> Some { X3k_ast.flag = f; negate = n })
              (int_bound 3) bool );
        ]
    in
    map2
      (fun (op, width, dt, d) (s1, s2, pred) ->
        {
          X3k_ast.pred;
          op;
          width;
          dtype = dt;
          dst = Some (X3k_ast.Reg d);
          srcs = [ s1; s2 ];
          line = 1;
        })
      (tup4 op width dt reg)
      (tup3 operand operand pred))

let prop_x3k_encode_roundtrip =
  QCheck.Test.make ~name:"x3k random program encode/decode roundtrip"
    ~count:100
    QCheck.(
      make
        Gen.(
          map
            (fun instrs ->
              {
                X3k_ast.name = "rand";
                instrs =
                  Array.of_list
                    (instrs
                    @ [
                        {
                          X3k_ast.pred = None;
                          op = X3k_ast.End;
                          width = 1;
                          dtype = X3k_ast.DW;
                          dst = None;
                          srcs = [];
                          line = 99;
                        };
                      ]);
                surfaces = [||];
                labels = [];
                source = "";
              })
            (list_size (int_bound 20) x3k_gen_instr)))
    (fun p ->
      match X3k_check.check p with
      | Error _ -> QCheck.assume_fail ()
      | Ok p -> (
        match X3k_asm.of_binary ~name:"rand" (X3k_asm.to_binary p) with
        | Error _ -> false
        | Ok p2 ->
          p.X3k_ast.instrs = p2.X3k_ast.instrs))

let test_x3k_disassemble_contains_mnemonics () =
  let p = x3k_ok fig6 in
  let dis = X3k_asm.disassemble p in
  List.iter
    (fun m ->
      check_bool m true (Astring.String.is_infix ~affix:m dis))
    [ "shl.1.dw"; "ld.8.dw"; "add.8.dw"; "st.8.dw"; "(A, vr1, 0)" ]

(* ---- VIA32 ---- *)

let via_prog =
  {|
entry:
  mov.d   eax, 0
loop_top:
  cmp     eax, 16
  jge     fin
  movdqu  xmm0, [DATA + eax*4]
  paddd   xmm0, xmm1
  movdqu  [DATA + eax*4], xmm0
  add     eax, 4
  jmp     loop_top
fin:
  ret
|}

let test_via32_parses () =
  let p = via_ok via_prog in
  check_int "instrs" 9 (Array.length p.Via32_ast.instrs);
  check_bool "symbol interned" true (p.Via32_ast.symbols = [| "DATA" |])

let test_via32_mem_operand_forms () =
  let p = via_ok "  mov.d eax, [ebx + ecx*8 - 12]\n  hlt\n" in
  match p.Via32_ast.instrs.(0).Via32_ast.operands with
  | [ _; Via32_ast.M { base = Some Via32_ast.EBX; index = Some (Via32_ast.ECX, 8); disp = -12; sym = None } ] -> ()
  | _ -> Alcotest.fail "memory operand decomposition"

let test_via32_call_classification () =
  let p = via_ok "f:\n  ret\nmain:\n  call f\n  call chi_wait\n  hlt\n" in
  (match Via32_ast.call_target p 1 with
  | Some (Via32_ast.Internal 0) -> ()
  | _ -> Alcotest.fail "internal call");
  match Via32_ast.call_target p 2 with
  | Some (Via32_ast.Intrinsic "chi_wait") -> ()
  | _ -> Alcotest.fail "intrinsic call"

let test_via32_undefined_jump () =
  let e = via_err "  jmp nowhere_at_all\n  hlt\n" in
  check_bool "msg" true (Astring.String.is_infix ~affix:"undefined label" e.Loc.msg)

let test_via32_two_mem_rejected () =
  let e = via_err "  mov.d [eax], [ebx]\n  hlt\n" in
  check_bool "msg" true
    (Astring.String.is_infix ~affix:"two memory operands" e.Loc.msg)

let test_via32_shift_operand_kinds () =
  let e = via_err "  shl eax, [ebx]\n  hlt\n" in
  check_bool "msg" true
    (Astring.String.is_infix ~affix:"register or immediate" e.Loc.msg)

let test_via32_termination_required () =
  let e = via_err "  mov.d eax, 1\n" in
  check_bool "msg" true (Astring.String.is_infix ~affix:"must end" e.Loc.msg)

let test_via32_binary_roundtrip () =
  let p = via_ok via_prog in
  match Via32_asm.of_binary ~name:"t" (Via32_asm.to_binary p) with
  | Error e -> Alcotest.fail e
  | Ok p2 ->
    check_bool "instrs equal" true (p.Via32_ast.instrs = p2.Via32_ast.instrs);
    check_bool "calls equal" true
      (List.sort compare p.Via32_ast.calls = List.sort compare p2.Via32_ast.calls);
    check_bool "symbols equal" true (p.Via32_ast.symbols = p2.Via32_ast.symbols)

let test_via32_pshufd_arity () =
  ignore (via_ok "  pshufd xmm0, xmm1, 27\n  hlt\n");
  let e = via_err "  pshufd xmm0, xmm1\n  hlt\n" in
  check_bool "msg" true (Astring.String.is_infix ~affix:"3 operand" e.Loc.msg)

let () =
  Alcotest.run "isa"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "hex/float" `Quick test_lexer_hex_and_floats;
          Alcotest.test_case "bad char" `Quick test_lexer_bad_char;
        ] );
      ( "x3k",
        [
          Alcotest.test_case "figure 6 parses" `Quick test_x3k_fig6_parses;
          Alcotest.test_case "labels" `Quick test_x3k_labels_resolve;
          Alcotest.test_case "undefined label" `Quick test_x3k_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_x3k_duplicate_label;
          Alcotest.test_case "bad register" `Quick test_x3k_bad_register;
          Alcotest.test_case "width divisibility" `Quick test_x3k_width_divisibility;
          Alcotest.test_case "missing end" `Quick test_x3k_missing_end;
          Alcotest.test_case "cmp flag dst" `Quick test_x3k_cmp_needs_flag_dst;
          Alcotest.test_case "sel needs pred" `Quick test_x3k_sel_requires_pred;
          Alcotest.test_case "br arity" `Quick test_x3k_branch_target_checked;
          Alcotest.test_case "accumulates errors" `Quick
            test_x3k_accumulates_all_errors;
          Alcotest.test_case "predication" `Quick test_x3k_predication_parses;
          Alcotest.test_case "float imm" `Quick test_x3k_float_imm;
          Alcotest.test_case "sem suffixes" `Quick test_x3k_sem_suffixes;
          Alcotest.test_case "remote/spawn" `Quick test_x3k_remote_and_spawn;
          Alcotest.test_case "binary roundtrip" `Quick test_x3k_binary_roundtrip;
          QCheck_alcotest.to_alcotest prop_x3k_encode_roundtrip;
          Alcotest.test_case "disassembly" `Quick test_x3k_disassemble_contains_mnemonics;
        ] );
      ( "via32",
        [
          Alcotest.test_case "accumulates errors" `Quick
            test_via32_accumulates_all_errors;
          Alcotest.test_case "parses" `Quick test_via32_parses;
          Alcotest.test_case "memory operands" `Quick test_via32_mem_operand_forms;
          Alcotest.test_case "call classes" `Quick test_via32_call_classification;
          Alcotest.test_case "undefined jump" `Quick test_via32_undefined_jump;
          Alcotest.test_case "two mem rejected" `Quick test_via32_two_mem_rejected;
          Alcotest.test_case "shift kinds" `Quick test_via32_shift_operand_kinds;
          Alcotest.test_case "termination" `Quick test_via32_termination_required;
          Alcotest.test_case "binary roundtrip" `Quick test_via32_binary_roundtrip;
          Alcotest.test_case "pshufd arity" `Quick test_via32_pshufd_arity;
        ] );
    ]
