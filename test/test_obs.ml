(* Exo-trace observability subsystem: ring-buffer sink semantics, the
   Chrome/Perfetto exporter and its validator, metrics aggregation, and
   the two load-bearing invariants of the design:

     - determinism: same seed (and same fault plan) produces a
       byte-identical exported trace;
     - zero overhead: installing a sink leaves the simulated run
       time-for-time and bit-for-bit identical to an untraced run. *)

open Exochi_obs
open Exochi_kernels

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- ring-buffer sink ---- *)

let ev i = Trace.Shred_enqueue { shred_id = i }

let test_sink_basic () =
  let s = Trace.create ~capacity:8 () in
  check_int "capacity" 8 (Trace.capacity s);
  check_int "empty" 0 (Trace.length s);
  Trace.emit s ~ts_ps:100 ~seq:Trace.Ia32 (ev 0);
  Trace.emit s ~ts_ps:200 ~dur_ps:50
    ~seq:(Trace.Exo { eu = 1; slot = 2 })
    (ev 1);
  check_int "two events" 2 (Trace.length s);
  check_int "no drops" 0 (Trace.dropped s);
  (match Trace.events s with
  | [ a; b ] ->
    check_int "oldest first" 100 a.Trace.ts_ps;
    check_int "dur default" 0 a.Trace.dur_ps;
    check_int "dur recorded" 50 b.Trace.dur_ps;
    check_string "seq label" "EU1/T2" (Trace.seq_label b.Trace.seq)
  | _ -> Alcotest.fail "expected 2 events");
  Trace.clear s;
  check_int "cleared" 0 (Trace.length s)

let test_sink_overflow_drops_oldest () =
  let s = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit s ~ts_ps:(1000 * i) ~seq:Trace.Ia32 (ev i)
  done;
  check_int "bounded" 4 (Trace.length s);
  check_int "drops counted" 6 (Trace.dropped s);
  let ids =
    List.map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Shred_enqueue { shred_id } -> shred_id
        | _ -> -1)
      (Trace.events s)
  in
  Alcotest.(check (list int)) "last 4 survive, oldest first" [ 6; 7; 8; 9 ] ids

let test_sink_topology () =
  let s = Trace.create () in
  check_int "default eus" 8 (Trace.eus s);
  check_int "default threads/eu" 4 (Trace.threads_per_eu s);
  Trace.set_topology s ~eus:2 ~threads_per_eu:3;
  check_int "track count follows topology" 7 (Trace_export.track_count s);
  check_int "ia32 tid" 0 (Trace_export.tid_of s Trace.Ia32);
  check_int "exo tid" 6
    (Trace_export.tid_of s (Trace.Exo { eu = 1; slot = 2 }))

(* ---- export + validation ---- *)

let kernel name =
  match Registry.find name with Some k -> k | None -> assert false

let traced_run ?fault_plan ?(frames = 2) name =
  let sink = Trace.create () in
  let r = Harness.run ?fault_plan ~frames ~trace:sink (kernel name) Kernel.Small in
  (r, sink)

let test_export_validates () =
  let r, sink = traced_run "BOB" in
  check_bool "run correct" true r.Harness.correct;
  let json = Trace_export.to_chrome sink in
  match Trace_export.validate_chrome json with
  | Error msg -> Alcotest.fail ("exported trace invalid: " ^ msg)
  | Ok v ->
    check_int "all 33 tracks declared" 33 v.Trace_export.tracks;
    check_bool "events present" true (v.Trace_export.events > 0);
    check_bool "counter samples present" true (v.Trace_export.counters > 0)

let test_export_track_names () =
  let s = Trace.create () in
  check_string "tid 0" "IA32 sequencer (proxy)" (Trace_export.track_name s 0);
  check_string "tid 1" "exo EU0/T0" (Trace_export.track_name s 1);
  check_string "tid 32" "exo EU7/T3" (Trace_export.track_name s 32)

let test_validate_rejects_garbage () =
  let bad s =
    match Trace_export.validate_chrome s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("validator accepted: " ^ s)
  in
  bad "not json at all";
  bad "{}";
  (* traceEvents missing *)
  bad {|{"traceEvents": 42}|};
  (* event without ph *)
  bad {|{"traceEvents":[{"pid":1,"tid":0,"ts":1.0}]}|};
  (* X slice without dur *)
  bad {|{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":1.0,"name":"a"}]}|};
  (* per-track ts going backwards *)
  bad
    {|{"traceEvents":[
        {"ph":"i","s":"t","pid":1,"tid":3,"ts":2.0,"name":"a"},
        {"ph":"i","s":"t","pid":1,"tid":3,"ts":1.0,"name":"b"}]}|}

let test_validate_accepts_minimal () =
  let good =
    {|{"traceEvents":[
        {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"t0"}},
        {"ph":"i","s":"t","pid":1,"tid":0,"ts":1.0,"name":"a"},
        {"ph":"X","pid":1,"tid":0,"ts":1.0,"dur":0.5,"name":"b"},
        {"ph":"i","s":"t","pid":1,"tid":1,"ts":0.5,"name":"c"}]}|}
  in
  match Trace_export.validate_chrome good with
  | Error msg -> Alcotest.fail ("validator rejected minimal trace: " ^ msg)
  | Ok v ->
    check_int "one named track" 1 v.Trace_export.tracks;
    check_int "three events" 3 v.Trace_export.events

(* ---- determinism ---- *)

let fresh_plan () =
  Exochi_faults.Fault_plan.create ~seed:42L
    ~rates:(Exochi_faults.Fault_plan.uniform_rates 0.01)
    ()

let test_trace_byte_identical () =
  let _, s1 = traced_run "SepiaTone" in
  let _, s2 = traced_run "SepiaTone" in
  check_string "same seed, byte-identical export"
    (Trace_export.to_chrome s1) (Trace_export.to_chrome s2)

let test_trace_byte_identical_under_faults () =
  let r1, s1 = traced_run ~fault_plan:(fresh_plan ()) "SepiaTone" in
  let r2, s2 = traced_run ~fault_plan:(fresh_plan ()) "SepiaTone" in
  check_bool "faulted run recovers" true
    (r1.Harness.correct && r2.Harness.correct);
  check_bool "faults actually fired" true (r1.Harness.faults_injected > 0);
  check_string "same seed + same fault plan, byte-identical export"
    (Trace_export.to_chrome s1) (Trace_export.to_chrome s2)

(* ---- zero overhead ---- *)

let test_tracing_is_free () =
  let k = kernel "BOB" in
  let plain = Harness.run ~frames:2 k Kernel.Small in
  let traced = Harness.run ~frames:2 ~trace:(Trace.create ()) k Kernel.Small in
  check_bool "Harness.result identical with and without a sink" true
    (plain = traced)

let test_tracing_is_free_under_faults () =
  let k = kernel "SepiaTone" in
  let plain = Harness.run ~frames:2 ~fault_plan:(fresh_plan ()) k Kernel.Small in
  let traced =
    Harness.run ~frames:2 ~fault_plan:(fresh_plan ())
      ~trace:(Trace.create ()) k Kernel.Small
  in
  check_bool "identical result under fault injection" true (plain = traced)

(* ---- metrics ---- *)

let test_metrics_agree_with_harness () =
  let r, sink = traced_run "BOB" in
  let m = Metrics.of_sink sink in
  check_int "shreds retired" r.Harness.shreds m.Metrics.shreds_retired;
  check_int "shreds enqueued" r.Harness.shreds m.Metrics.shreds_enqueued;
  check_int "gtt hits" r.Harness.gtt_hits m.Metrics.atr_gtt_hits.Metrics.count;
  check_int "atr proxies" r.Harness.atr_proxies
    m.Metrics.atr_proxies.Metrics.count;
  check_int "ceh proxies" r.Harness.ceh_proxies
    m.Metrics.ceh_proxies.Metrics.count;
  check_int "flush bytes" r.Harness.flush_bytes m.Metrics.flush_bytes;
  check_int "copy bytes" r.Harness.copy_bytes m.Metrics.copy_bytes;
  check_bool "occupancy in (0,1]" true
    (m.Metrics.occupancy > 0.0 && m.Metrics.occupancy <= 1.0);
  check_bool "latency percentiles ordered" true
    (m.Metrics.lat_p50_ps <= m.Metrics.lat_p95_ps
    && m.Metrics.lat_p95_ps <= m.Metrics.lat_p99_ps);
  check_bool "render mentions occupancy" true
    (Astring.String.is_infix ~affix:"occupancy" (Metrics.render m))

let test_metrics_json_parses () =
  let _, sink = traced_run "BOB" in
  let json =
    Metrics.to_json ~extra:[ ("kernel", {|"BOB"|}) ] (Metrics.of_sink sink)
  in
  match Tiny_json.parse json with
  | Error msg -> Alcotest.fail ("metrics JSON malformed: " ^ msg)
  | Ok j ->
    (match Tiny_json.member "kernel" j with
    | Some (Tiny_json.Str "BOB") -> ()
    | _ -> Alcotest.fail "extra field lost");
    (match Tiny_json.member "shreds_retired" j with
    | Some (Tiny_json.Num n) -> check_bool "shreds > 0" true (n > 0.0)
    | _ -> Alcotest.fail "shreds_retired missing")

(* ---- Tiny_json ---- *)

let test_tiny_json_roundtrip () =
  match Tiny_json.parse {|{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":null,"d":true}|} with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
    (match Tiny_json.member "a" j with
    | Some (Tiny_json.Arr [ Tiny_json.Num a; Tiny_json.Num b; Tiny_json.Num c ])
      ->
      check_bool "nums" true (a = 1.0 && b = 2.5 && c = -300.0)
    | _ -> Alcotest.fail "array");
    (match Tiny_json.member "b" j with
    | Some (Tiny_json.Str s) -> check_string "escapes" "x\n\"y\"" s
    | _ -> Alcotest.fail "string");
    check_bool "trailing garbage rejected" true
      (match Tiny_json.parse "{} junk" with Error _ -> true | Ok _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "basic" `Quick test_sink_basic;
          Alcotest.test_case "overflow" `Quick test_sink_overflow_drops_oldest;
          Alcotest.test_case "topology" `Quick test_sink_topology;
        ] );
      ( "export",
        [
          Alcotest.test_case "kernel trace validates" `Quick
            test_export_validates;
          Alcotest.test_case "track names" `Quick test_export_track_names;
          Alcotest.test_case "validator rejects" `Quick
            test_validate_rejects_garbage;
          Alcotest.test_case "validator accepts" `Quick
            test_validate_accepts_minimal;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical" `Quick test_trace_byte_identical;
          Alcotest.test_case "byte-identical under faults" `Quick
            test_trace_byte_identical_under_faults;
        ] );
      ( "zero-overhead",
        [
          Alcotest.test_case "tracing is free" `Quick test_tracing_is_free;
          Alcotest.test_case "free under faults" `Quick
            test_tracing_is_free_under_faults;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "agree with harness" `Quick
            test_metrics_agree_with_harness;
          Alcotest.test_case "json parses" `Quick test_metrics_json_parses;
        ] );
      ( "tiny-json",
        [ Alcotest.test_case "roundtrip" `Quick test_tiny_json_roundtrip ] );
    ]
