(* Exo-trace observability subsystem: ring-buffer sink semantics, the
   Chrome/Perfetto exporter and its validator, metrics aggregation, and
   the two load-bearing invariants of the design:

     - determinism: same seed (and same fault plan) produces a
       byte-identical exported trace;
     - zero overhead: installing a sink leaves the simulated run
       time-for-time and bit-for-bit identical to an untraced run. *)

open Exochi_obs
open Exochi_kernels

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- ring-buffer sink ---- *)

let ev i = Trace.Shred_enqueue { shred_id = i }

let test_sink_basic () =
  let s = Trace.create ~capacity:8 () in
  check_int "capacity" 8 (Trace.capacity s);
  check_int "empty" 0 (Trace.length s);
  Trace.emit s ~ts_ps:100 ~seq:Trace.Ia32 (ev 0);
  Trace.emit s ~ts_ps:200 ~dur_ps:50
    ~seq:(Trace.Exo { eu = 1; slot = 2 })
    (ev 1);
  check_int "two events" 2 (Trace.length s);
  check_int "no drops" 0 (Trace.dropped s);
  (match Trace.events s with
  | [ a; b ] ->
    check_int "oldest first" 100 a.Trace.ts_ps;
    check_int "dur default" 0 a.Trace.dur_ps;
    check_int "dur recorded" 50 b.Trace.dur_ps;
    check_string "seq label" "EU1/T2" (Trace.seq_label b.Trace.seq)
  | _ -> Alcotest.fail "expected 2 events");
  Trace.clear s;
  check_int "cleared" 0 (Trace.length s)

let test_sink_overflow_drops_oldest () =
  let s = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit s ~ts_ps:(1000 * i) ~seq:Trace.Ia32 (ev i)
  done;
  check_int "bounded" 4 (Trace.length s);
  check_int "drops counted" 6 (Trace.dropped s);
  let ids =
    List.map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Shred_enqueue { shred_id } -> shred_id
        | _ -> -1)
      (Trace.events s)
  in
  Alcotest.(check (list int)) "last 4 survive, oldest first" [ 6; 7; 8; 9 ] ids

let test_sink_topology () =
  let s = Trace.create () in
  check_int "default eus" 8 (Trace.eus s);
  check_int "default threads/eu" 4 (Trace.threads_per_eu s);
  Trace.set_topology s ~eus:2 ~threads_per_eu:3 ();
  let at ?(dev = 0) seq =
    { Trace.ts_ps = 0; dur_ps = 0; dev; seq; kind = Trace.Quarantine }
  in
  check_int "track count follows topology" 7 (Trace_export.track_count s);
  check_int "ia32 tid" 0 (Trace_export.tid_of s (at Trace.Ia32));
  check_int "exo tid" 6
    (Trace_export.tid_of s (at (Trace.Exo { eu = 1; slot = 2 })));
  Trace.set_topology s ~devices:2 ~eus:2 ~threads_per_eu:3 ();
  check_int "device tracks append" 13 (Trace_export.track_count s);
  check_int "dev 1 tid offset" 12
    (Trace_export.tid_of s (at ~dev:1 (Trace.Exo { eu = 1; slot = 2 })));
  check_string "dev 1 track name" "exo D1 EU1/T2" (Trace_export.track_name s 12)

(* ---- export + validation ---- *)

let kernel name =
  match Registry.find name with Some k -> k | None -> assert false

let traced_run ?fault_plan ?(frames = 2) name =
  let sink = Trace.create () in
  let r = Harness.run ?fault_plan ~frames ~trace:sink (kernel name) Kernel.Small in
  (r, sink)

let test_export_validates () =
  let r, sink = traced_run "BOB" in
  check_bool "run correct" true r.Harness.correct;
  let json = Trace_export.to_chrome sink in
  match Trace_export.validate_chrome json with
  | Error msg -> Alcotest.fail ("exported trace invalid: " ^ msg)
  | Ok v ->
    check_int "all 33 tracks declared" 33 v.Trace_export.tracks;
    check_bool "events present" true (v.Trace_export.events > 0);
    check_bool "counter samples present" true (v.Trace_export.counters > 0)

let test_export_track_names () =
  let s = Trace.create () in
  check_string "tid 0" "IA32 sequencer (proxy)" (Trace_export.track_name s 0);
  check_string "tid 1" "exo EU0/T0" (Trace_export.track_name s 1);
  check_string "tid 32" "exo EU7/T3" (Trace_export.track_name s 32)

let test_validate_rejects_garbage () =
  let bad s =
    match Trace_export.validate_chrome s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("validator accepted: " ^ s)
  in
  bad "not json at all";
  bad "{}";
  (* traceEvents missing *)
  bad {|{"traceEvents": 42}|};
  (* event without ph *)
  bad {|{"traceEvents":[{"pid":1,"tid":0,"ts":1.0}]}|};
  (* X slice without dur *)
  bad {|{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":1.0,"name":"a"}]}|};
  (* per-track ts going backwards *)
  bad
    {|{"traceEvents":[
        {"ph":"i","s":"t","pid":1,"tid":3,"ts":2.0,"name":"a"},
        {"ph":"i","s":"t","pid":1,"tid":3,"ts":1.0,"name":"b"}]}|}

let test_validate_accepts_minimal () =
  let good =
    {|{"traceEvents":[
        {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"t0"}},
        {"ph":"i","s":"t","pid":1,"tid":0,"ts":1.0,"name":"a"},
        {"ph":"X","pid":1,"tid":0,"ts":1.0,"dur":0.5,"name":"b"},
        {"ph":"i","s":"t","pid":1,"tid":1,"ts":0.5,"name":"c"}]}|}
  in
  match Trace_export.validate_chrome good with
  | Error msg -> Alcotest.fail ("validator rejected minimal trace: " ^ msg)
  | Ok v ->
    check_int "one named track" 1 v.Trace_export.tracks;
    check_int "three events" 3 v.Trace_export.events

(* ---- determinism ---- *)

let fresh_plan () =
  Exochi_faults.Fault_plan.create ~seed:42L
    ~rates:(Exochi_faults.Fault_plan.uniform_rates 0.01)
    ()

let test_trace_byte_identical () =
  let _, s1 = traced_run "SepiaTone" in
  let _, s2 = traced_run "SepiaTone" in
  check_string "same seed, byte-identical export"
    (Trace_export.to_chrome s1) (Trace_export.to_chrome s2)

let test_trace_byte_identical_under_faults () =
  let r1, s1 = traced_run ~fault_plan:(fresh_plan ()) "SepiaTone" in
  let r2, s2 = traced_run ~fault_plan:(fresh_plan ()) "SepiaTone" in
  check_bool "faulted run recovers" true
    (r1.Harness.correct && r2.Harness.correct);
  check_bool "faults actually fired" true (r1.Harness.faults_injected > 0);
  check_string "same seed + same fault plan, byte-identical export"
    (Trace_export.to_chrome s1) (Trace_export.to_chrome s2)

(* ---- zero overhead ---- *)

let test_tracing_is_free () =
  let k = kernel "BOB" in
  let plain = Harness.run ~frames:2 k Kernel.Small in
  let traced = Harness.run ~frames:2 ~trace:(Trace.create ()) k Kernel.Small in
  check_bool "Harness.result identical with and without a sink" true
    (plain = traced)

let test_tracing_is_free_under_faults () =
  let k = kernel "SepiaTone" in
  let plain = Harness.run ~frames:2 ~fault_plan:(fresh_plan ()) k Kernel.Small in
  let traced =
    Harness.run ~frames:2 ~fault_plan:(fresh_plan ())
      ~trace:(Trace.create ()) k Kernel.Small
  in
  check_bool "identical result under fault injection" true (plain = traced)

(* ---- metrics ---- *)

let test_metrics_agree_with_harness () =
  let r, sink = traced_run "BOB" in
  let m = Metrics.of_sink sink in
  check_int "shreds retired" r.Harness.shreds m.Metrics.shreds_retired;
  check_int "shreds enqueued" r.Harness.shreds m.Metrics.shreds_enqueued;
  check_int "gtt hits" r.Harness.gtt_hits m.Metrics.atr_gtt_hits.Metrics.count;
  check_int "atr proxies" r.Harness.atr_proxies
    m.Metrics.atr_proxies.Metrics.count;
  check_int "ceh proxies" r.Harness.ceh_proxies
    m.Metrics.ceh_proxies.Metrics.count;
  check_int "flush bytes" r.Harness.flush_bytes m.Metrics.flush_bytes;
  check_int "copy bytes" r.Harness.copy_bytes m.Metrics.copy_bytes;
  check_bool "occupancy in (0,1]" true
    (m.Metrics.occupancy > 0.0 && m.Metrics.occupancy <= 1.0);
  check_bool "latency percentiles ordered" true
    (m.Metrics.lat_p50_ps <= m.Metrics.lat_p95_ps
    && m.Metrics.lat_p95_ps <= m.Metrics.lat_p99_ps);
  check_bool "render mentions occupancy" true
    (Astring.String.is_infix ~affix:"occupancy" (Metrics.render m))

let test_metrics_json_parses () =
  let _, sink = traced_run "BOB" in
  let json =
    Metrics.to_json ~extra:[ ("kernel", {|"BOB"|}) ] (Metrics.of_sink sink)
  in
  match Tiny_json.parse json with
  | Error msg -> Alcotest.fail ("metrics JSON malformed: " ^ msg)
  | Ok j ->
    (match Tiny_json.member "kernel" j with
    | Some (Tiny_json.Str "BOB") -> ()
    | _ -> Alcotest.fail "extra field lost");
    (match Tiny_json.member "shreds_retired" j with
    | Some (Tiny_json.Num n) -> check_bool "shreds > 0" true (n > 0.0)
    | _ -> Alcotest.fail "shreds_retired missing")

(* ---- Hist: streaming log-bucketed histogram ---- *)

(* Three shapes deliberately spanning octaves differently: flat across a
   decade, heavy-tailed, and two tight modes three octaves apart. All
   strictly positive so the zero bucket stays out of the way. *)
let distributions =
  let prng = Exochi_util.Prng.create 7L in
  [
    ("uniform", List.init 5000 (fun _ -> 1.0 +. (Exochi_util.Prng.float prng *. 999.0)));
    ( "exponential",
      List.init 5000 (fun _ ->
          1e-6 -. (250.0 *. log (1.0 -. Exochi_util.Prng.float prng))) );
    ( "bimodal",
      List.init 5000 (fun i ->
          let mean, sigma = if i mod 10 = 0 then (9000.0, 50.0) else (120.0, 8.0) in
          Float.max 1.0 (Exochi_util.Prng.gaussian prng ~mean ~sigma)) );
  ]

let hist_of xs =
  let h = Hist.create () in
  List.iter (Hist.record h) xs;
  h

let test_hist_quantile_error () =
  List.iter
    (fun (name, xs) ->
      let h = hist_of xs in
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      List.iter
        (fun p ->
          let q = Hist.quantile h p in
          (* Hist uses nearest rank on the 0-based scale Stats.percentile
             interpolates over, so the estimate must land within one
             bucket width of the order statistics bracketing that rank. *)
          let pos = p /. 100.0 *. float_of_int (n - 1) in
          let lo = a.(int_of_float (Float.floor pos)) in
          let hi = a.(int_of_float (Float.ceil pos)) in
          let exact = Exochi_util.Stats.percentile p xs in
          check_bool
            (Printf.sprintf "%s p%.0f: %.3f within a bucket of exact %.3f"
               name p q exact)
            true
            (q >= lo -. Hist.width_at lo && q <= hi +. Hist.width_at hi);
          check_bool "clamped into observed range" true
            (q >= Hist.min_value h && q <= Hist.max_value h))
        [ 50.0; 90.0; 99.0 ];
      check_int "count exact" n (Hist.count h);
      let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
      check_bool "mean exact (tracked outside buckets)" true
        (Float.abs (Hist.mean h -. mean) < 1e-9 *. mean))
    distributions

let test_hist_merge_associative () =
  let chunks =
    List.map (fun (_, xs) -> hist_of xs) distributions
  in
  match chunks with
  | [ a; b; c ] ->
    let l = Hist.merge (Hist.merge a b) c in
    let r = Hist.merge a (Hist.merge b c) in
    let whole = hist_of (List.concat_map snd distributions) in
    List.iter
      (fun (name, h) ->
        check_int (name ^ " count") (Hist.count whole) (Hist.count h);
        (* float addition reassociates across merge orders: equal to
           rounding, not bit-equal *)
        check_bool (name ^ " sum") true
          (Float.abs (Hist.sum whole -. Hist.sum h)
          <= 1e-9 *. Float.abs (Hist.sum whole));
        check_bool (name ^ " min") true
          (Hist.min_value whole = Hist.min_value h);
        check_bool (name ^ " max") true
          (Hist.max_value whole = Hist.max_value h);
        Alcotest.(check (list (pair (float 0.0) int)))
          (name ^ " identical buckets")
          (Hist.nonzero whole) (Hist.nonzero h);
        List.iter
          (fun p ->
            check_bool
              (Printf.sprintf "%s p%.0f" name p)
              true
              (Hist.quantile whole p = Hist.quantile h p))
          [ 0.0; 50.0; 90.0; 99.0; 100.0 ])
      [ ("(a+b)+c", l); ("a+(b+c)", r) ]
  | _ -> Alcotest.fail "expected 3 distributions"

let test_hist_zero_bucket () =
  let h = hist_of [ -5.0; 0.0; 4.0; 4.0 ] in
  check_int "all counted" 4 (Hist.count h);
  check_bool "negatives pool at 0" true (Hist.quantile h 0.0 = 0.0);
  check_bool "min exact even when non-positive" true (Hist.min_value h = -5.0);
  match Hist.nonzero h with
  | (0.0, 2) :: (m, 2) :: [] ->
    check_bool "positive bucket holds 4.0" true
      (Float.abs (m -. 4.0) <= Hist.width_at 4.0)
  | _ -> Alcotest.fail "unexpected bucket layout"

(* ---- Live: exact streaming aggregation past ring wrap ---- *)

module Serve = Exochi_serving

let serve_traced ~capacity =
  let sink = Trace.create ~capacity () in
  let live = Live.create () in
  Live.attach live sink;
  let server = Serve.Server.create ~trace:sink () in
  let wl =
    Serve.Workload.create
      (Serve.Workload.default_spec ~seed:77L ~tenants:2 ~jobs:40
         (Serve.Workload.Closed { clients_per_tenant = 4; think_ps = 0 }))
  in
  Serve.Server.prepare server (Serve.Workload.kernels wl);
  let stats = Serve.Server.run server wl in
  (sink, live, stats)

let test_live_exact_after_ring_wrap () =
  (* Same seed, same server: the only difference is the ring size. The
     small ring wraps (windowed post-mortem metrics); the Live tap must
     agree exactly with the unbounded-ring reference anyway. *)
  let small_sink, small, s_stats = serve_traced ~capacity:256 in
  let ref_sink, live_ref, r_stats = serve_traced ~capacity:1_000_000 in
  check_bool "small ring wrapped" true (Trace.dropped small_sink > 0);
  check_int "reference ring did not" 0 (Trace.dropped ref_sink);
  check_int "tap saw every event despite the wrap"
    (Live.events live_ref) (Live.events small);
  check_int "jobs done exact" (Live.jobs_done live_ref) (Live.jobs_done small);
  check_int "jobs done agrees with server stats"
    s_stats.Serve.Server_stats.completed (Live.jobs_done small);
  check_int "identical sim either way" s_stats.Serve.Server_stats.completed
    r_stats.Serve.Server_stats.completed;
  check_int "shreds retired exact" (Live.shreds_retired live_ref)
    (Live.shreds_retired small);
  check_int "exo busy exact" (Live.exo_busy_ps live_ref)
    (Live.exo_busy_ps small);
  check_int "span exact" (Live.span_ps live_ref) (Live.span_ps small);
  check_int "batches exact" (Live.batches live_ref) (Live.batches small);
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "job latency p%.0f exact" p)
        true
        (Hist.quantile (Live.job_lat small) p
        = Hist.quantile (Live.job_lat live_ref) p);
      check_bool
        (Printf.sprintf "shred latency p%.0f exact" p)
        true
        (Hist.quantile (Live.shred_lat small) p
        = Hist.quantile (Live.shred_lat live_ref) p))
    [ 50.0; 99.0 ];
  (* The unbounded-ring post-mortem fold is the reference: Live must
     match it, while the wrapped ring's fold is only a tail window. *)
  let m_ref = Metrics.of_sink ref_sink in
  let m_small = Metrics.of_sink small_sink in
  check_bool "reference fold not windowed" false m_ref.Metrics.windowed;
  check_bool "wrapped fold windowed" true m_small.Metrics.windowed;
  check_int "Live matches unbounded-ring reference"
    m_ref.Metrics.jobs_done (Live.jobs_done small);
  check_bool "Live p50 matches reference fold" true
    (m_ref.Metrics.job_lat_p50_ps = Hist.quantile (Live.job_lat small) 50.0);
  check_bool "Live p99 matches reference fold" true
    (m_ref.Metrics.job_lat_p99_ps = Hist.quantile (Live.job_lat small) 99.0);
  check_bool "windowed fold lost events" true
    (m_small.Metrics.events < m_ref.Metrics.events)

let test_tap_is_free () =
  let k = kernel "BOB" in
  let plain = Harness.run ~frames:2 k Kernel.Small in
  let sink = Trace.create () in
  let live = Live.create () in
  Live.attach live sink;
  let tapped = Harness.run ~frames:2 ~trace:sink k Kernel.Small in
  check_bool "Harness.result identical with a Live tap attached" true
    (plain = tapped);
  check_int "tap saw ring + dropped"
    (Trace.length sink + Trace.dropped sink)
    (Live.events live);
  check_int "retired shreds agree" plain.Harness.shreds
    (Live.shreds_retired live)

let test_tap_is_free_under_faults () =
  let k = kernel "SepiaTone" in
  let plain = Harness.run ~frames:2 ~fault_plan:(fresh_plan ()) k Kernel.Small in
  let sink = Trace.create () in
  Live.attach (Live.create ()) sink;
  let tapped =
    Harness.run ~frames:2 ~fault_plan:(fresh_plan ()) ~trace:sink k Kernel.Small
  in
  check_bool "identical result with tap under fault injection" true
    (plain = tapped)

(* ---- windowed metrics + export drop metadata ---- *)

let wrapped_sink () =
  let s = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit s ~ts_ps:(1000 * i) ~seq:Trace.Ia32 (ev i)
  done;
  s

let test_metrics_windowed_flag () =
  let m = Metrics.of_sink (wrapped_sink ()) in
  check_int "dropped" 6 m.Metrics.dropped;
  check_bool "windowed set" true m.Metrics.windowed;
  (match Tiny_json.parse (Metrics.to_json m) with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
    match Tiny_json.member "windowed" j with
    | Some (Tiny_json.Bool true) -> ()
    | _ -> Alcotest.fail {|"windowed": true missing from JSON|}));
  let fresh = Metrics.of_sink (Trace.create ()) in
  check_bool "fresh sink not windowed" false fresh.Metrics.windowed

let test_export_reports_drops () =
  let json = Trace_export.to_chrome (wrapped_sink ()) in
  (match Trace_export.validate_chrome json with
  | Error msg -> Alcotest.fail ("wrapped export invalid: " ^ msg)
  | Ok v -> check_int "drop count surfaced" 6 v.Trace_export.dropped);
  let _, sink = traced_run "BOB" in
  match Trace_export.validate_chrome (Trace_export.to_chrome sink) with
  | Error msg -> Alcotest.fail msg
  | Ok v -> check_int "unwrapped export reports 0" 0 v.Trace_export.dropped

(* ---- profiler: exact per-instruction attribution ---- *)

let profiled_src =
  {|
int X[64];

void main() {
  int i;
  for (i = 0; i < 64; i = i + 1) { X[i] = i; }
  chi_desc(X, 2, 64, 1);
  #pragma omp parallel target(X3000) shared(X) private(i) master_nowait
  for (i = 0; i < 8; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    ld.8.dw    [vr10..vr17] = (X, vr1, 0)
    add.8.dw   [vr10..vr17] = [vr10..vr17], [vr10..vr17]
    st.8.dw    (X, vr1, 0) = [vr10..vr17]
    end
  }
  chi_wait();
  print_int(X[2]);
}
|}

let test_profile_sums_to_exo_busy () =
  match Exochi_core.Chilite_compile.compile ~name:"prof" profiled_src with
  | Error e -> Alcotest.fail (Exochi_isa.Loc.error_to_string e)
  | Ok compiled ->
    let profile = Profile.create () in
    let platform = Exochi_core.Exo_platform.create () in
    let prog = Exochi_core.Chilite_run.load ~profile ~platform compiled in
    Exochi_core.Chilite_run.run prog;
    Alcotest.(check (list int)) "program output" [ 4 ]
      (Exochi_core.Chilite_run.output prog);
    let gpu = Exochi_core.Exo_platform.gpu platform in
    let exo_busy_ps =
      Exochi_accel.Gpu.busy_cycles gpu
      * Exochi_util.Timebase.ps_per_cycle (Exochi_accel.Gpu.clock gpu)
    in
    check_bool "exo sequencers did work" true (exo_busy_ps > 0);
    (* The load-bearing identity: per-instruction exo frame costs sum to
       the exo-sequencers' busy time exactly — the profiler is a ledger,
       not a sampler. *)
    check_int "exo frames sum to exo busy time" exo_busy_ps
      (Profile.root_total_ps profile ~prefix:"exo ");
    check_bool "ia32 frames attributed on top" true
      (Profile.total_ps profile > exo_busy_ps);
    let collapsed = Profile.to_collapsed profile in
    check_bool "exo root anchored to its .chi section" true
      (Astring.String.is_infix ~affix:"exo " collapsed);
    match Tiny_json.parse (Profile.to_speedscope profile ~name:"prof") with
    | Error msg -> Alcotest.fail ("speedscope JSON malformed: " ^ msg)
    | Ok j -> (
      (match Tiny_json.member "profiles" j with
      | Some (Tiny_json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "profiles array missing");
      match
        Option.bind (Tiny_json.member "shared" j) (Tiny_json.member "frames")
      with
      | Some (Tiny_json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "shared frame table missing")

(* ---- Tiny_json ---- *)

let test_tiny_json_roundtrip () =
  match Tiny_json.parse {|{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":null,"d":true}|} with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
    (match Tiny_json.member "a" j with
    | Some (Tiny_json.Arr [ Tiny_json.Num a; Tiny_json.Num b; Tiny_json.Num c ])
      ->
      check_bool "nums" true (a = 1.0 && b = 2.5 && c = -300.0)
    | _ -> Alcotest.fail "array");
    (match Tiny_json.member "b" j with
    | Some (Tiny_json.Str s) -> check_string "escapes" "x\n\"y\"" s
    | _ -> Alcotest.fail "string");
    check_bool "trailing garbage rejected" true
      (match Tiny_json.parse "{} junk" with Error _ -> true | Ok _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "sink",
        [
          Alcotest.test_case "basic" `Quick test_sink_basic;
          Alcotest.test_case "overflow" `Quick test_sink_overflow_drops_oldest;
          Alcotest.test_case "topology" `Quick test_sink_topology;
        ] );
      ( "export",
        [
          Alcotest.test_case "kernel trace validates" `Quick
            test_export_validates;
          Alcotest.test_case "track names" `Quick test_export_track_names;
          Alcotest.test_case "validator rejects" `Quick
            test_validate_rejects_garbage;
          Alcotest.test_case "validator accepts" `Quick
            test_validate_accepts_minimal;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical" `Quick test_trace_byte_identical;
          Alcotest.test_case "byte-identical under faults" `Quick
            test_trace_byte_identical_under_faults;
        ] );
      ( "zero-overhead",
        [
          Alcotest.test_case "tracing is free" `Quick test_tracing_is_free;
          Alcotest.test_case "free under faults" `Quick
            test_tracing_is_free_under_faults;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "agree with harness" `Quick
            test_metrics_agree_with_harness;
          Alcotest.test_case "json parses" `Quick test_metrics_json_parses;
          Alcotest.test_case "windowed flag" `Quick test_metrics_windowed_flag;
          Alcotest.test_case "export reports drops" `Quick
            test_export_reports_drops;
        ] );
      ( "hist",
        [
          Alcotest.test_case "quantile error bounded" `Quick
            test_hist_quantile_error;
          Alcotest.test_case "merge associative" `Quick
            test_hist_merge_associative;
          Alcotest.test_case "zero bucket" `Quick test_hist_zero_bucket;
        ] );
      ( "live",
        [
          Alcotest.test_case "exact after ring wrap" `Quick
            test_live_exact_after_ring_wrap;
          Alcotest.test_case "tap is free" `Quick test_tap_is_free;
          Alcotest.test_case "tap free under faults" `Quick
            test_tap_is_free_under_faults;
        ] );
      ( "profile",
        [
          Alcotest.test_case "sums to exo busy time" `Quick
            test_profile_sums_to_exo_busy;
        ] );
      ( "tiny-json",
        [ Alcotest.test_case "roundtrip" `Quick test_tiny_json_roundtrip ] );
    ]
