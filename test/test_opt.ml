(* Exo-opt: per-pass unit tests on seeded programs, plus the
   registry-wide differential gate — every kernel at every level, with
   and without fault injection, must keep its outputs bit-identical to
   golden while never spending more accelerator busy time. *)

module Opt = Exochi_opt.Opt
module Ast = Exochi_isa.X3k_ast
module Bound = Exochi_analysis.Bound
open Exochi_kernels

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let asm src = Exochi_isa.X3k_asm.assemble_exn ~name:"t" src

let count p pred =
  Array.fold_left (fun n i -> if pred i then n + 1 else n) 0 p.Ast.instrs

let count_op p op = count p (fun i -> i.Ast.op = op)

(* ---- constant folding + copy propagation ---- *)

let test_constprop_folds () =
  let p =
    asm
      "  mov.8.dw vr1 = 7\n\
      \  mov.8.dw vr2 = 3\n\
      \  add.8.dw vr3 = vr1, vr2\n\
      \  st.8.b (OUT, vr3, vr3) = vr3\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Constprop p in
  (match q.Ast.instrs.(2) with
  | { Ast.op = Ast.Mov; srcs = [ Ast.Imm v ]; _ } ->
    check_int "7+3 folded" 10 (Int32.to_int v)
  | _ -> Alcotest.fail "add of two constants did not fold to mov");
  check_int "same length" (Array.length p.Ast.instrs)
    (Array.length q.Ast.instrs)

let test_constprop_copy_into_surface () =
  (* vr4 is a copy of vr1; the store address should propagate *)
  let p =
    asm
      "  mov.1.dw vr1 = %p0\n\
      \  mov.1.dw vr4 = vr1\n\
      \  ld.8.b vr5 = (IN, vr4, vr1)\n\
      \  st.8.b (OUT, vr4, vr1) = vr5\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Constprop p in
  (match q.Ast.instrs.(2) with
  | { Ast.srcs = [ Ast.Surf2d { xreg; yreg; _ } ]; _ } ->
    check_int "load x index copy-propagated" 1 xreg;
    check_int "load y index untouched" 1 yreg
  | _ -> Alcotest.fail "unexpected load shape")

let test_constprop_respects_width () =
  (* vr1's constant is only known for lane 0; the width-8 add must not
     treat lanes 1..7 as 7 *)
  let p =
    asm
      "  mov.1.dw vr1 = 7\n\
      \  add.8.dw vr3 = vr1, vr2\n\
      \  st.8.b (OUT, vr3, vr3) = vr3\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Constprop p in
  (match q.Ast.instrs.(1) with
  | { Ast.op = Ast.Add; srcs = [ Ast.Reg 1; Ast.Reg 2 ]; _ } -> ()
  | _ -> Alcotest.fail "width-1 fact leaked into a width-8 use")

(* ---- strength reduction ---- *)

let test_strength_mul_pow2 () =
  let p =
    asm
      "  mul.8.dw vr2 = vr1, 8\n\
      \  add.8.dw vr3 = vr2, 0\n\
      \  st.8.b (OUT, vr3, vr3) = vr3\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Strength p in
  (match q.Ast.instrs.(0) with
  | { Ast.op = Ast.Shl; srcs = [ Ast.Reg 1; Ast.Imm v ]; _ } ->
    check_int "mul by 8 is shl by 3" 3 (Int32.to_int v)
  | _ -> Alcotest.fail "mul by power of two not reduced to shl");
  match q.Ast.instrs.(1) with
  | { Ast.op = Ast.Mov; srcs = [ Ast.Reg 2 ]; _ } -> ()
  | _ -> Alcotest.fail "add of zero not reduced to mov"

let test_strength_or_zero_narrow_kept () =
  (* or/xor skip the per-dtype wrap, so or-with-0 is only mov-equivalent
     at dw: mov.8.b would re-wrap each lane to 8 bits *)
  let p =
    asm
      "  or.8.b vr2 = vr1, 0\n\
      \  st.8.b (OUT, vr2, vr2) = vr2\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Strength p in
  match q.Ast.instrs.(0) with
  | { Ast.op = Ast.Or; _ } -> ()
  | _ -> Alcotest.fail "byte-width or-with-zero must not become mov"

(* ---- common-subexpression elimination ---- *)

let test_cse_dedups () =
  let p =
    asm
      "  add.8.dw vr3 = vr1, vr2\n\
      \  add.8.dw vr4 = vr1, vr2\n\
      \  st.8.b (OUT, vr3, vr4) = vr3\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Cse p in
  match q.Ast.instrs.(1) with
  | { Ast.op = Ast.Mov; srcs = [ Ast.Reg 3 ]; _ } -> ()
  | _ -> Alcotest.fail "repeated expression not rewritten to mov"

let test_cse_rmw_not_merged () =
  (* add vr1 = vr1, 8 invalidates itself: a second occurrence computes a
     different value and must survive *)
  let p =
    asm
      "  add.1.dw vr1 = vr1, 8\n\
      \  add.1.dw vr1 = vr1, 8\n\
      \  st.8.b (OUT, vr1, vr1) = vr1\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Cse p in
  check_int "both read-modify-write adds survive" 2 (count_op q Ast.Add)

let test_cse_killed_by_redefinition () =
  let p =
    asm
      "  add.8.dw vr3 = vr1, vr2\n\
      \  mov.8.dw vr1 = 5\n\
      \  add.8.dw vr4 = vr1, vr2\n\
      \  st.8.b (OUT, vr3, vr4) = vr3\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Cse p in
  check_int "redefined operand kills the table entry" 2 (count_op q Ast.Add)

(* ---- dead-code elimination ---- *)

let test_dce_removes_dead_store () =
  let p =
    asm
      "  mov.8.dw vr1 = 7\n\
      \  add.8.dw vr9 = vr2, vr3\n\
      \  st.8.b (OUT, vr2, vr3) = vr2\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Dce p in
  check_int "dead mov and add removed" 2 (Array.length q.Ast.instrs)

let test_dce_keeps_faulting_ops () =
  (* a dead ld can segfault and a dead fdiv can fault into the CEH
     path: both must survive *)
  let p =
    asm
      "  ld.8.b vr9 = (IN, vr1, vr2)\n\
      \  fdiv.8.f vr8 = vr3, vr4\n\
      \  st.8.b (OUT, vr1, vr2) = vr1\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Dce p in
  check_int "ld kept" 1 (count_op q Ast.Ld);
  check_int "fdiv kept" 1 (count_op q Ast.Fdiv)

(* ---- loop-invariant code motion ---- *)

let test_licm_hoists () =
  let p =
    asm
      "  mov.1.dw vr0 = 0\n\
       LOOP:\n\
      \  add.8.dw vr5 = vr1, vr2\n\
      \  st.8.b (OUT, vr0, vr5) = vr5\n\
      \  add.1.dw vr0 = vr0, 1\n\
      \  cmp.lt.1.dw f0 = vr0, %p0\n\
      \  br.any f0, LOOP\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Licm p in
  (* the invariant add runs once, before the loop: it must now sit at
     index 1, ahead of the branch target *)
  (match q.Ast.instrs.(1) with
  | { Ast.op = Ast.Add; srcs = [ Ast.Reg 1; Ast.Reg 2 ]; _ } -> ()
  | _ -> Alcotest.fail "invariant add not hoisted to the preheader");
  check_int "still exactly two adds" 2 (count_op q Ast.Add)

let test_licm_leaves_variant_alone () =
  let p =
    asm
      "  mov.1.dw vr0 = 0\n\
       LOOP:\n\
      \  add.8.dw vr5 = vr0, vr2\n\
      \  st.8.b (OUT, vr0, vr5) = vr5\n\
      \  add.1.dw vr0 = vr0, 1\n\
      \  cmp.lt.1.dw f0 = vr0, %p0\n\
      \  br.any f0, LOOP\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Licm p in
  check_int "nothing to hoist: program unchanged"
    (Array.length p.Ast.instrs)
    (Array.length q.Ast.instrs);
  match q.Ast.instrs.(1) with
  | { Ast.op = Ast.Add; _ } -> ()
  | _ -> Alcotest.fail "loop body reshuffled without cause"

(* ---- full unrolling ---- *)

let test_unroll_constant_trip () =
  let p =
    asm
      "  mov.1.dw vr0 = 0\n\
       LOOP:\n\
      \  st.8.b (OUT, vr0, vr0) = vr1\n\
      \  add.1.dw vr0 = vr0, 1\n\
      \  cmp.lt.1.dw f0 = vr0, 4\n\
      \  br.any f0, LOOP\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Unroll p in
  check_int "no branches left" 0 (count q (fun i ->
      match i.Ast.op with Ast.Br _ | Ast.Jmp -> true | _ -> false));
  check_int "four stores" 4 (count_op q Ast.St)

let test_unroll_unknown_trip_kept () =
  let p =
    asm
      "  mov.1.dw vr0 = 0\n\
       LOOP:\n\
      \  st.8.b (OUT, vr0, vr0) = vr1\n\
      \  add.1.dw vr0 = vr0, 1\n\
      \  cmp.lt.1.dw f0 = vr0, %p0\n\
      \  br.any f0, LOOP\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Unroll p in
  check_int "parameter-bounded loop stays rolled" 1
    (count q (fun i -> match i.Ast.op with Ast.Br _ -> true | _ -> false))

(* ---- scheduling ---- *)

let test_sched_preserves_multiset () =
  let p =
    asm
      "  ld.8.b vr1 = (IN, vr0, vr0)\n\
      \  add.8.dw vr2 = vr1, 1\n\
      \  mov.8.dw vr3 = 7\n\
      \  mov.8.dw vr4 = 9\n\
      \  st.8.b (OUT, vr0, vr0) = vr2\n\
      \  end\n"
  in
  let q = Opt.run_pass Opt.Sched p in
  let names prog =
    List.sort compare
      (Array.to_list (Array.map (fun i -> Ast.opcode_name i.Ast.op) prog.Ast.instrs))
  in
  Alcotest.(check (list string)) "same instruction multiset" (names p) (names q);
  check_int "same static cost" (Opt.total_worst_retire p)
    (Opt.total_worst_retire q);
  (* dataflow respected: the dependent add still follows its load *)
  let idx pred =
    let r = ref (-1) in
    Array.iteri (fun i ins -> if !r < 0 && pred ins then r := i) q.Ast.instrs;
    !r
  in
  check_bool "add after ld" true
    (idx (fun i -> i.Ast.op = Ast.Ld) < idx (fun i -> i.Ast.op = Ast.Add))

(* ---- driver-level properties ---- *)

let test_o0_is_identity () =
  let p = asm "  mov.8.dw vr1 = 1\n  st.8.b (OUT, vr1, vr1) = vr1\n  end\n" in
  check_bool "O0 returns the program itself" true (Opt.optimize Opt.O0 p == p)

let test_unsupported_unchanged () =
  let p =
    asm
      "CHILD:\n  end\n  spawn CHILD, vr3\n  mov.8.dw vr1 = 1\n\
      \  add.8.dw vr2 = vr1, vr1\n  end\n"
  in
  check_bool "spawn program returned unchanged" true
    (Opt.optimize Opt.O2 p == p)

let test_levels_parse () =
  check_bool "O2" true (Opt.level_of_string "-O2" = Some Opt.O2);
  check_bool "bare digit" true (Opt.level_of_string "1" = Some Opt.O1);
  check_bool "garbage" true (Opt.level_of_string "O9" = None);
  check_int "roundtrip" 2 (Opt.level_to_int (Option.get (Opt.level_of_int 2)))

let test_diff_report_shape () =
  let p =
    asm
      "  mov.1.dw vr0 = 0\n\
       LOOP:\n\
      \  st.8.b (OUT, vr0, vr0) = vr1\n\
      \  add.1.dw vr0 = vr0, 1\n\
      \  cmp.lt.1.dw f0 = vr0, 4\n\
      \  br.any f0, LOOP\n\
      \  end\n"
  in
  let q = Opt.optimize Opt.O2 p in
  let rep = Opt.diff_report ~original:p ~optimized:q in
  check_bool "report mentions both columns" true
    (Astring.String.is_infix ~affix:"-- original --" rep
    && Astring.String.is_infix ~affix:"-- optimized --" rep);
  check_bool "per-block costs present" true
    (Astring.String.is_infix ~affix:"worst-retire cycles" rep);
  check_int "block count matches program blocks"
    (List.length (Opt.block_costs p))
    3

(* ---- the registry-wide differential gate ---- *)

let frames_for (k : Kernel.t) =
  match k.abbrev with "FMD" -> Some 6 | _ -> Some 3

let run_level ?fault_seed (k : Kernel.t) level =
  let fault_plan =
    Option.map
      (fun seed ->
        match
          Exochi_faults.Fault_plan.of_spec (Printf.sprintf "%d:0.02" seed)
        with
        | Ok plan -> plan
        | Error msg -> Alcotest.fail msg)
      fault_seed
  in
  Harness.run ?frames:(frames_for k) ?fault_plan ~split:Harness.All_gpu
    ~opt_level:level k Kernel.Small

let test_registry_differential () =
  List.iter
    (fun (k : Kernel.t) ->
      let r0 = run_level k Opt.O0 in
      let r1 = run_level k Opt.O1 in
      let r2 = run_level k Opt.O2 in
      List.iter
        (fun (lvl, r) ->
          check_bool
            (Printf.sprintf "%s %s output bit-identical to golden" k.abbrev lvl)
            true
            (r.Harness.correct && r.Harness.max_diff = 0);
          check_bool (k.abbrev ^ " " ^ lvl ^ " ran shreds") true
            (r.Harness.shreds > 0))
        [ ("O0", r0); ("O1", r1); ("O2", r2) ];
      if r1.Harness.gpu_busy_ps > r0.Harness.gpu_busy_ps then
        Alcotest.failf "%s: O1 busy %d ps exceeds O0 busy %d ps" k.abbrev
          r1.Harness.gpu_busy_ps r0.Harness.gpu_busy_ps;
      if r2.Harness.gpu_busy_ps > r0.Harness.gpu_busy_ps then
        Alcotest.failf "%s: O2 busy %d ps exceeds O0 busy %d ps" k.abbrev
          r2.Harness.gpu_busy_ps r0.Harness.gpu_busy_ps)
    Registry.all

let test_registry_differential_faults () =
  (* the same gate under deterministic fault injection: recovery must
     still deliver bit-correct outputs from optimized code *)
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun level ->
          let r = run_level ~fault_seed:7 k level in
          check_bool
            (Printf.sprintf "%s %s output correct under faults" k.abbrev
               (Opt.level_name level))
            true
            (r.Harness.correct && r.Harness.max_diff = 0))
        [ Opt.O1; Opt.O2 ])
    Registry.all

let test_registry_bounds_sound_optimized () =
  (* EXO011–EXO015-backed WCET verdicts re-proved on the optimized
     programs: measured busy never exceeds shreds x bound x cycle *)
  let cycle_ps =
    Exochi_util.Timebase.ps_per_cycle
      (Exochi_util.Timebase.clock
         ~mhz:Exochi_accel.Gpu.default_config.Exochi_accel.Gpu.clock_mhz)
  in
  List.iter
    (fun (k : Kernel.t) ->
      let io =
        k.make_io ?frames:(frames_for k) (Exochi_util.Prng.create 42L)
          Kernel.Small
      in
      let xp =
        Opt.optimize Opt.O2
          (Exochi_isa.X3k_asm.assemble_exn ~name:k.abbrev (k.x3k_asm io))
      in
      let units = io.Kernel.units in
      let nparams = Array.length (k.unit_params io 0) in
      let lo = Array.copy (k.unit_params io 0) in
      let hi = Array.copy (k.unit_params io 0) in
      for u = 1 to units - 1 do
        Array.iteri
          (fun i v ->
            if v < lo.(i) then lo.(i) <- v;
            if v > hi.(i) then hi.(i) <- v)
          (k.unit_params io u)
      done;
      let env i =
        if i >= 0 && i < nparams then Some (lo.(i), hi.(i)) else None
      in
      match (Bound.analyze_x3k ~env xp).Bound.verdict with
      | Bound.Cycles c ->
        let r = run_level k Opt.O2 in
        let static_ps = r.Harness.shreds * c * cycle_ps in
        if r.Harness.gpu_busy_ps > static_ps then
          Alcotest.failf "%s: optimized busy %d ps exceeds static bound %d ps"
            k.abbrev r.Harness.gpu_busy_ps static_ps
      | v ->
        Alcotest.failf "%s: optimized program lost its cycle bound (%s)"
          k.abbrev (Bound.verdict_to_string v))
    Registry.all

let () =
  Alcotest.run "opt"
    [
      ( "passes",
        [
          Alcotest.test_case "constprop folds" `Quick test_constprop_folds;
          Alcotest.test_case "constprop surface copy" `Quick
            test_constprop_copy_into_surface;
          Alcotest.test_case "constprop width" `Quick
            test_constprop_respects_width;
          Alcotest.test_case "strength mul pow2" `Quick test_strength_mul_pow2;
          Alcotest.test_case "strength or zero narrow" `Quick
            test_strength_or_zero_narrow_kept;
          Alcotest.test_case "cse dedups" `Quick test_cse_dedups;
          Alcotest.test_case "cse rmw" `Quick test_cse_rmw_not_merged;
          Alcotest.test_case "cse kill" `Quick test_cse_killed_by_redefinition;
          Alcotest.test_case "dce dead store" `Quick
            test_dce_removes_dead_store;
          Alcotest.test_case "dce faulting ops" `Quick
            test_dce_keeps_faulting_ops;
          Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
          Alcotest.test_case "licm variant" `Quick
            test_licm_leaves_variant_alone;
          Alcotest.test_case "unroll constant trip" `Quick
            test_unroll_constant_trip;
          Alcotest.test_case "unroll unknown trip" `Quick
            test_unroll_unknown_trip_kept;
          Alcotest.test_case "sched multiset" `Quick
            test_sched_preserves_multiset;
        ] );
      ( "driver",
        [
          Alcotest.test_case "O0 identity" `Quick test_o0_is_identity;
          Alcotest.test_case "unsupported unchanged" `Quick
            test_unsupported_unchanged;
          Alcotest.test_case "levels parse" `Quick test_levels_parse;
          Alcotest.test_case "diff report" `Quick test_diff_report_shape;
        ] );
      ( "differential",
        [
          Alcotest.test_case "registry all levels" `Slow
            test_registry_differential;
          Alcotest.test_case "registry under faults" `Slow
            test_registry_differential_faults;
          Alcotest.test_case "bounds sound on optimized" `Slow
            test_registry_bounds_sound_optimized;
        ] );
    ]
