(* Exo-serve: multi-tenant kernel-job serving on the simulated EXO
   platform — admission control and typed shedding, weighted fair
   sharing, batched dispatch, deadline handling, graceful degradation
   under fault plans, and determinism of the whole serving pipeline. *)

open Exochi_serving
module Gpu = Exochi_accel.Gpu
module Platform = Exochi_core.Exo_platform
module Fault_plan = Exochi_faults.Fault_plan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let closed ?(clients = 4) ?(think_ps = 0) () =
  Workload.Closed { clients_per_tenant = clients; think_ps }

(* ---- scheduling building blocks ---- *)

let test_job_edf_order () =
  let mk id deadline =
    {
      Job.id;
      tenant = 0;
      kernel = "SepiaTone";
      shreds = 4;
      priority = Job.Normal;
      submit_ps = 100;
      deadline_ps = deadline;
    }
  in
  let a = mk 0 (Some 900) and b = mk 1 (Some 500) and c = mk 2 None in
  check_bool "earlier deadline first" true (Job.compare_edf b a < 0);
  check_bool "no deadline last" true (Job.compare_edf a c < 0);
  check_bool "total order by id" true
    (Job.compare_edf (mk 3 None) (mk 4 None) < 0);
  check_bool "expired" true (Job.expired b ~now_ps:501);
  check_bool "not expired" false (Job.expired b ~now_ps:500);
  check_bool "no deadline never expires" false (Job.expired c ~now_ps:max_int)

let test_batcher_coalesces_same_kernel () =
  let t0 = Tenant.create ~id:0 (Tenant.make_config "a") in
  let t1 = Tenant.create ~id:1 (Tenant.make_config "b") in
  let mk id tenant kernel =
    {
      Job.id;
      tenant;
      kernel;
      shreds = 8;
      priority = Job.Normal;
      submit_ps = id;
      deadline_ps = None;
    }
  in
  Tenant.enqueue t0 (mk 0 0 "SepiaTone");
  Tenant.enqueue t0 (mk 1 0 "LinearFilter");
  Tenant.enqueue t1 (mk 2 1 "SepiaTone");
  let expired, batch =
    Batcher.select
      { Batcher.max_jobs = 8; max_shreds = 64 }
      [| t0; t1 |] ~now_ps:10
  in
  check_int "nothing expired" 0 (List.length expired);
  match batch with
  | None -> Alcotest.fail "expected a batch"
  | Some b ->
    check_string "lead kernel" "SepiaTone" b.Batcher.kernel;
    check_int "coalesced across tenants" 2 (List.length b.Batcher.jobs);
    check_int "shreds summed" 16 b.Batcher.shreds;
    (* the incompatible kernel stayed queued *)
    check_int "LinearFilter left behind" 1 (Tenant.depth t0)

(* ---- serving smoke + accounting ---- *)

let test_serve_smoke () =
  let server = Server.create () in
  let wl =
    Workload.create
      (Workload.default_spec ~seed:11L ~tenants:2 ~jobs:24
         (closed ~clients:3 ()))
  in
  let st = Server.run server wl in
  check_int "all submitted" 24 st.Server_stats.submitted;
  check_int "conservation" st.Server_stats.submitted
    (st.Server_stats.completed + st.Server_stats.shed);
  check_int "nothing shed on an idle platform" 0 st.Server_stats.shed;
  check_bool "batched" true
    (st.Server_stats.batches > 0
    && st.Server_stats.batches < st.Server_stats.completed);
  check_bool "latencies measured" true (st.Server_stats.lat_p50_ps > 0.0);
  check_bool "span covers the run" true (st.Server_stats.span_ps > 0);
  List.iter
    (fun t ->
      check_int "per-tenant conservation" t.Server_stats.t_submitted
        (t.Server_stats.t_completed + t.Server_stats.t_shed))
    st.Server_stats.tenants

let test_serve_deterministic () =
  let once () =
    let server = Server.create () in
    let wl =
      Workload.create
        {
          (Workload.default_spec ~seed:99L ~tenants:2 ~jobs:30
             (Workload.Open { rate_jps = 20000.0 }))
          with
          deadline_slack_ps = Some 500_000_000;
        }
    in
    Server_stats.to_json (Server.run server wl)
  in
  check_string "bit-identical stats for a fixed seed" (once ()) (once ())

(* ---- batching is a measured win ---- *)

let test_batching_throughput_gain () =
  let big_queues =
    Array.map
      (fun (c : Tenant.config) -> { c with Tenant.queue_cap = 128 })
      Server.default_config.Server.tenants
  in
  let run batch =
    let config =
      { Server.default_config with tenants = big_queues; batch;
        backlog_cap = 256 }
    in
    let server = Server.create ~config () in
    let wl =
      Workload.create
        {
          (Workload.default_spec ~seed:5L ~tenants:2 ~jobs:60
             (Workload.Open { rate_jps = 60000.0 }))
          with
          shreds_lo = 4;
          shreds_hi = 8;
        }
    in
    Server.run server wl
  in
  let batched = run Batcher.default in
  let solo = run { Batcher.max_jobs = 1; max_shreds = 256 } in
  (* no deadlines and deep queues: both complete everything, so the gain
     is pure dispatch efficiency *)
  check_int "batched completes all" 60 batched.Server_stats.completed;
  check_int "solo completes all" 60 solo.Server_stats.completed;
  check_bool "coalescing happened" true
    (batched.Server_stats.batches < solo.Server_stats.batches);
  check_bool "batched throughput strictly higher" true
    (batched.Server_stats.throughput_jps
    > solo.Server_stats.throughput_jps)

(* ---- weighted fair sharing ---- *)

let test_wfq_weights_respected () =
  let config =
    {
      Server.default_config with
      tenants =
        [|
          Tenant.make_config ~weight:3.0 ~queue_cap:64 "gold";
          Tenant.make_config ~weight:1.0 ~queue_cap:64 "bronze";
        |];
      backlog_cap = 256;
      (* small per-cycle budget: fairness only shows under contention *)
      batch = { Batcher.max_jobs = 4; max_shreds = 32 };
    }
  in
  let server = Server.create ~config () in
  Server.prepare server [ "SepiaTone" ];
  (* saturate both tenants with identical work, then serve a few cycles:
     service must follow the 3:1 weights *)
  for _ = 1 to 30 do
    Array.iteri
      (fun tenant _ ->
        match
          Server.submit server
            (Server.make_job server ~tenant ~kernel:"SepiaTone" ~shreds:8 ())
        with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "admission unexpectedly refused")
      [| (); () |]
  done;
  for _ = 1 to 5 do
    ignore (Server.dispatch_cycle server ())
  done;
  let st = Server.stats server in
  let shreds name =
    let t =
      List.find (fun t -> t.Server_stats.t_name = name) st.Server_stats.tenants
    in
    t.Server_stats.t_shreds
  in
  let gold = shreds "gold" and bronze = shreds "bronze" in
  check_bool "both tenants served" true (gold > 0 && bronze > 0);
  check_bool
    (Printf.sprintf "weight-3 tenant served ~3x (gold %d, bronze %d)" gold
       bronze)
    true
    (gold >= 2 * bronze)

let test_priority_leads_dispatch () =
  let server = Server.create () in
  Server.prepare server [ "SepiaTone"; "LinearFilter" ];
  (* six Low jobs on one kernel queued first; one High job on another
     kernel must still lead the first batch *)
  for _ = 1 to 6 do
    ignore
      (Server.submit server
         (Server.make_job server ~tenant:0 ~kernel:"LinearFilter" ~shreds:4
            ~priority:Job.Low ()))
  done;
  let high =
    Server.make_job server ~tenant:1 ~kernel:"SepiaTone" ~shreds:4
      ~priority:Job.High ()
  in
  (match Server.submit server high with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "high-priority admission refused");
  let first_done = ref None in
  ignore
    (Server.dispatch_cycle server
       ~on_done:(fun j ->
         if !first_done = None then first_done := Some j.Job.id)
       ());
  check_bool "high-priority job completed first" true
    (!first_done = Some high.Job.id);
  Server.drain server;
  let st = Server.stats server in
  check_int "everything eventually served" 7 st.Server_stats.completed

(* ---- admission edge cases ---- *)

let is_queue_full = function Error (Job.Queue_full _) -> true | _ -> false

let test_zero_capacity_queue_sheds () =
  let config =
    {
      Server.default_config with
      tenants = [| Tenant.make_config ~queue_cap:0 "frozen" |];
    }
  in
  let server = Server.create ~config () in
  Server.prepare server [ "SepiaTone" ];
  let r =
    Server.submit server
      (Server.make_job server ~tenant:0 ~kernel:"SepiaTone" ~shreds:4 ())
  in
  check_bool "zero-capacity queue sheds everything" true (is_queue_full r);
  let st = Server.stats server in
  check_int "shed recorded" 1 st.Server_stats.shed;
  check_bool "typed reason recorded" true
    (List.mem_assoc "queue-full" st.Server_stats.sheds)

let test_backlog_cap_sheds () =
  let config =
    {
      Server.default_config with
      tenants = [| Tenant.make_config ~queue_cap:64 "t" |];
      backlog_cap = 2;
    }
  in
  let server = Server.create ~config () in
  Server.prepare server [ "SepiaTone" ];
  let submit () =
    Server.submit server
      (Server.make_job server ~tenant:0 ~kernel:"SepiaTone" ~shreds:4 ())
  in
  check_bool "first admitted" true (submit () = Ok ());
  check_bool "second admitted" true (submit () = Ok ());
  (match submit () with
  | Error (Job.Inflight_exceeded { backlog; cap }) ->
    check_int "backlog at cap" 2 backlog;
    check_int "cap reported" 2 cap
  | _ -> Alcotest.fail "expected Inflight_exceeded");
  Server.drain server;
  check_int "admitted jobs still served" 2
    (Server.stats server).Server_stats.completed

let test_expired_deadline_at_admission () =
  let server = Server.create () in
  Server.prepare server [ "SepiaTone" ];
  check_bool "clock has advanced past arena setup" true (Server.now_ps server > 0);
  let stale =
    Server.make_job server ~tenant:0 ~kernel:"SepiaTone" ~shreds:4
      ~deadline_ps:(Server.now_ps server - 1)
      ()
  in
  (match Server.submit server stale with
  | Error (Job.Deadline_expired { late_ps }) ->
    check_bool "lateness measured" true (late_ps >= 1)
  | _ -> Alcotest.fail "expected Deadline_expired");
  check_int "never queued" 0 (Server.queue_depth server)

let test_unknown_kernel_sheds () =
  let server = Server.create () in
  match
    Server.submit server
      (Server.make_job server ~tenant:0 ~kernel:"NoSuchKernel" ~shreds:4 ())
  with
  | Error (Job.Unknown_kernel k) -> check_string "name echoed" "NoSuchKernel" k
  | _ -> Alcotest.fail "expected Unknown_kernel"

let test_deadline_expires_while_queued () =
  let server = Server.create () in
  Server.prepare server [ "SepiaTone"; "LinearFilter" ];
  (* the Normal job leads the first batch; the Low job on another kernel
     has a deadline far shorter than that batch's barrier, so it expires
     in the queue and is shed by the next dispatch cycle *)
  ignore
    (Server.submit server
       (Server.make_job server ~tenant:0 ~kernel:"SepiaTone" ~shreds:32 ()));
  (match
     Server.submit server
       (Server.make_job server ~tenant:0 ~kernel:"LinearFilter" ~shreds:4
          ~priority:Job.Low
          ~deadline_ps:(Server.now_ps server + 1_000)
          ())
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "short-deadline job should be admitted");
  Server.drain server;
  let st = Server.stats server in
  check_int "one completed" 1 st.Server_stats.completed;
  check_int "one shed" 1 st.Server_stats.shed;
  check_bool "shed as expired deadline" true
    (List.mem_assoc "deadline" st.Server_stats.sheds)

(* ---- graceful degradation ---- *)

let test_all_slots_quarantined_falls_back () =
  (* a zero-rate plan arms the supervised dispatcher without perturbing
     anything; quarantining every EU context leaves the platform with no
     exo-sequencer capacity at all *)
  let plan = Fault_plan.create ~seed:1L ~rates:Fault_plan.zero_rates () in
  let server = Server.create ~fault_plan:plan () in
  Server.prepare server [ "SepiaTone" ];
  let gpu = Platform.gpu (Server.platform server) in
  let cfg = Gpu.default_config in
  for eu = 0 to cfg.Gpu.eus - 1 do
    for slot = 0 to cfg.Gpu.threads_per_eu - 1 do
      Gpu.quarantine gpu ~eu ~slot
    done
  done;
  check_int "no exo capacity left" 0 (Gpu.active_slots gpu);
  (match
     Server.submit server
       (Server.make_job server ~tenant:0 ~kernel:"SepiaTone" ~shreds:8 ())
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "admission refused");
  Server.drain server;
  let st = Server.stats server in
  check_int "job completed anyway" 1 st.Server_stats.completed;
  check_int "nothing shed" 0 st.Server_stats.shed;
  check_bool "served by IA32 proxy fallback" true
    (st.Server_stats.recovery.Server_stats.r_fallback_shreds >= 8);
  check_int "no fatal faults" 0 st.Server_stats.recovery.Server_stats.r_fatal

let test_fault_plan_recovery_in_metrics_json () =
  (* satellite: the runtime's recovery counters must surface in the
     serving metrics JSON under an active fault plan *)
  let plan =
    match Fault_plan.of_spec "7:0.02" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let server = Server.create ~fault_plan:plan () in
  let wl =
    Workload.create
      (Workload.default_spec ~seed:3L ~tenants:2 ~jobs:20
         (closed ~clients:2 ()))
  in
  let st = Server.run server wl in
  check_bool "faults were injected" true
    (st.Server_stats.recovery.Server_stats.r_faults_injected > 0);
  let json = Server_stats.to_json st in
  let has field = Astring.String.is_infix ~affix:(Printf.sprintf "%S" field) json in
  List.iter
    (fun f -> check_bool ("json has " ^ f) true (has f))
    [
      "faults_injected"; "redispatches"; "doorbell_redeliveries";
      "watchdog_kills"; "quarantined_seqs"; "fallback_shreds"; "atr_retries";
      "fatal";
    ];
  check_int "conservation under faults" st.Server_stats.submitted
    (st.Server_stats.completed + st.Server_stats.shed)

(* ---- observability ---- *)

let test_trace_and_metrics () =
  let sink = Exochi_obs.Trace.create () in
  let server = Server.create ~trace:sink () in
  let wl =
    Workload.create
      (Workload.default_spec ~seed:21L ~tenants:2 ~jobs:16
         (closed ~clients:2 ()))
  in
  let st = Server.run server wl in
  (match
     Exochi_obs.Trace_export.validate_chrome
       (Exochi_obs.Trace_export.to_chrome sink)
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("chrome export invalid: " ^ m));
  let m = Exochi_obs.Metrics.of_sink sink in
  check_int "metrics see every admission" st.Server_stats.admitted
    m.Exochi_obs.Metrics.jobs_arrived;
  check_int "metrics see every completion" st.Server_stats.completed
    m.Exochi_obs.Metrics.jobs_done;
  check_int "metrics see every batch" st.Server_stats.batches
    m.Exochi_obs.Metrics.batches;
  check_bool "job latency aggregated" true
    (m.Exochi_obs.Metrics.job_lat_p50_ps > 0.0)

let () =
  Alcotest.run "serve"
    [
      ( "scheduling",
        [
          Alcotest.test_case "EDF order" `Quick test_job_edf_order;
          Alcotest.test_case "batch coalescing" `Quick
            test_batcher_coalesces_same_kernel;
        ] );
      ( "serving",
        [
          Alcotest.test_case "smoke" `Quick test_serve_smoke;
          Alcotest.test_case "deterministic" `Quick test_serve_deterministic;
          Alcotest.test_case "batching gain" `Quick
            test_batching_throughput_gain;
          Alcotest.test_case "weighted fairness" `Quick
            test_wfq_weights_respected;
          Alcotest.test_case "priority leads" `Quick
            test_priority_leads_dispatch;
        ] );
      ( "admission",
        [
          Alcotest.test_case "zero-capacity queue" `Quick
            test_zero_capacity_queue_sheds;
          Alcotest.test_case "backlog cap" `Quick test_backlog_cap_sheds;
          Alcotest.test_case "expired at admission" `Quick
            test_expired_deadline_at_admission;
          Alcotest.test_case "unknown kernel" `Quick test_unknown_kernel_sheds;
          Alcotest.test_case "expires while queued" `Quick
            test_deadline_expires_while_queued;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "all slots quarantined" `Quick
            test_all_slots_quarantined_falls_back;
          Alcotest.test_case "recovery counters in metrics" `Quick
            test_fault_plan_recovery_in_metrics_json;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace + metrics" `Quick test_trace_and_metrics;
        ] );
    ]
