open Exochi_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 7L and b = Prng.create 8L in
  check_bool "different seeds differ" false (Prng.next64 a = Prng.next64 b)

let test_prng_int_range () =
  let p = Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_range () =
  let p = Prng.create 2L in
  for _ = 1 to 1000 do
    let v = Prng.float p in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_split_independent () =
  let p = Prng.create 3L in
  let q = Prng.split p in
  check_bool "split differs from parent" false (Prng.next64 p = Prng.next64 q)

let test_prng_gaussian_moments () =
  let p = Prng.create 4L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.gaussian p ~mean:5.0 ~sigma:2.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 5" true (abs_float (mean -. 5.0) < 0.1)

(* ---- Bits ---- *)

let test_extract_insert64 () =
  let v = Bits.insert64 0L ~hi:39 ~lo:12 0xABCDEL in
  Alcotest.(check int64) "extract back" 0xABCDEL (Bits.extract64 v ~hi:39 ~lo:12);
  Alcotest.(check int64) "low bits clear" 0L (Bits.extract64 v ~hi:11 ~lo:0)

let test_insert64_overflow_rejected () =
  Alcotest.check_raises "field too wide"
    (Invalid_argument "Bits.insert64: field wider than hi..lo") (fun () ->
      ignore (Bits.insert64 0L ~hi:3 ~lo:0 16L))

let test_insert32_roundtrip () =
  let v = Bits.insert32 0xFFFFFFFF ~hi:19 ~lo:8 0xABC in
  check_int "field" 0xABC (Bits.extract32 v ~hi:19 ~lo:8);
  check_int "bits below preserved" 0xFF (Bits.extract32 v ~hi:7 ~lo:0)

let test_sign_extend () =
  check_int "positive" 5 (Bits.sign_extend 5 ~bits:8);
  check_int "negative byte" (-1) (Bits.sign_extend 0xFF ~bits:8);
  check_int "negative 16" (-32768) (Bits.sign_extend 0x8000 ~bits:16)

let test_align_log2 () =
  check_int "align up" 128 (Bits.align_up 65 64);
  check_int "align exact" 64 (Bits.align_up 64 64);
  check_int "log2" 6 (Bits.log2 64);
  check_bool "pow2" true (Bits.is_pow2 4096);
  check_bool "not pow2" false (Bits.is_pow2 48)

let prop_insert_extract64 =
  QCheck.Test.make ~name:"insert64/extract64 roundtrip" ~count:500
    QCheck.(triple (int_bound 62) (int_bound 62) int64)
    (fun (a, b, v) ->
      let lo = min a b and hi = max a b in
      let width = hi - lo + 1 in
      (* hi <= 62, so width <= 63 and the mask below never overflows *)
      let mask = Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L) in
      let r = Bits.insert64 0L ~hi ~lo mask in
      Bits.extract64 r ~hi ~lo = mask)

let prop_popcount =
  QCheck.Test.make ~name:"popcount matches naive" ~count:500
    QCheck.(int_bound max_int)
    (fun v ->
      let rec naive acc n = if n = 0 then acc else naive (acc + (n land 1)) (n lsr 1) in
      Bits.popcount v = naive 0 v)

(* ---- Stats ---- *)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ])

let test_stats_percentile () =
  Alcotest.(check (float 1e-9)) "median" 2.5
    (Stats.percentile 50.0 [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0 ])

let test_stats_percentile_float_order () =
  (* regression: percentile once sorted with the polymorphic [compare];
     Float.compare must be used so ordering is the IEEE total order and
     large magnitudes interleaved with small ones sort numerically *)
  let xs = [ 1e300; -1e300; 2.0; -0.0; 0.0; 1e-300 ] in
  Alcotest.(check (float 0.0)) "p0 is min" (-1e300) (Stats.percentile 0.0 xs);
  Alcotest.(check (float 0.0)) "p100 is max" 1e300 (Stats.percentile 100.0 xs);
  let sorted = [ -1e300; -0.0; 0.0; 1e-300; 2.0; 1e300 ] in
  List.iteri
    (fun i v ->
      let p = 100.0 *. float_of_int i /. 5.0 in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%.0f lands on sorted rank %d" p i)
        v (Stats.percentile p xs))
    sorted;
  (* interpolation between adjacent ranks still works on the sorted data *)
  Alcotest.(check (float 1e-9)) "median interpolates" 0.5
    (Stats.percentile 50.0 [ 3.0; 0.0; 1.0; -2.0 ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 4.0; -7.5; 0.0; 3.25 ] in
  Alcotest.(check (float 0.0)) "min" (-7.5) lo;
  Alcotest.(check (float 0.0)) "max" 4.0 hi;
  (* documented behavior: nan propagates through Float.min/Float.max *)
  let lo, hi = Stats.min_max [ 1.0; Float.nan; 2.0 ] in
  check_bool "nan min" true (Float.is_nan lo);
  check_bool "nan max" true (Float.is_nan hi)

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

(* ---- Timebase ---- *)

let test_clock_ps () =
  let c = Timebase.clock ~mhz:1000 in
  check_int "1 GHz -> 1000 ps" 1000 (Timebase.ps_per_cycle c);
  check_int "10 cycles" 10_000 (Timebase.cycles_to_ps c 10);
  check_int "rounds up" 2 (Timebase.ps_to_cycles c 1001)

let test_transfer () =
  (* 8 bytes at 8 GB/s = 1 ns *)
  check_int "transfer" 1000 (Timebase.transfer_ps ~bytes:8 ~gbps:8.0)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ( "bits",
        [
          Alcotest.test_case "extract/insert64" `Quick test_extract_insert64;
          Alcotest.test_case "insert overflow" `Quick test_insert64_overflow_rejected;
          Alcotest.test_case "insert32" `Quick test_insert32_roundtrip;
          Alcotest.test_case "sign extend" `Quick test_sign_extend;
          Alcotest.test_case "align/log2" `Quick test_align_log2;
          QCheck_alcotest.to_alcotest prop_insert_extract64;
          QCheck_alcotest.to_alcotest prop_popcount;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile float order" `Quick
            test_stats_percentile_float_order;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "empty" `Quick test_stats_empty_rejected;
        ] );
      ( "timebase",
        [
          Alcotest.test_case "clock" `Quick test_clock_ps;
          Alcotest.test_case "transfer" `Quick test_transfer;
        ] );
    ]
